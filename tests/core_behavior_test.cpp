// Behavioral contracts beyond numerical equality: phase accounting,
// diagnostics, and the strategy-specific structures the paper describes.

#include <gtest/gtest.h>

#include "helpers.hpp"

namespace stkde {
namespace {

using testing::TinyInstance;
using testing::make_tiny;

TEST(Phases, PointBasedAlgorithmsReportInitAndCompute) {
  TinyInstance t = make_tiny(100, 3, 2);
  for (const Algorithm a : {Algorithm::kPB, Algorithm::kPBSym}) {
    const Result r = estimate(t.points, t.domain, t.params, a);
    EXPECT_GT(r.phases.seconds(phase::kInit), 0.0) << to_string(a);
    EXPECT_GT(r.phases.seconds(phase::kCompute), 0.0) << to_string(a);
    EXPECT_GT(r.total_seconds(), 0.0);
  }
}

TEST(Phases, DrReportsReducePhase) {
  TinyInstance t = make_tiny(100, 3, 2);
  const Result r = estimate(t.points, t.domain, t.params, Algorithm::kPBSymDR);
  EXPECT_GT(r.phases.seconds(phase::kReduce), 0.0);
}

TEST(Phases, DecomposedAlgorithmsReportBinPhase) {
  TinyInstance t = make_tiny(100, 2, 1);
  for (const Algorithm a : {Algorithm::kPBSymDD, Algorithm::kPBSymPD,
                            Algorithm::kPBSymPDSched, Algorithm::kPBSymPDRep}) {
    const Result r = estimate(t.points, t.domain, t.params, a);
    EXPECT_GT(r.phases.seconds(phase::kBin), 0.0) << to_string(a);
  }
}

TEST(Diagnostics, AlgorithmNamesArePaperNames) {
  TinyInstance t = make_tiny(20, 2, 1);
  EXPECT_EQ(estimate(t.points, t.domain, t.params, Algorithm::kPBSym)
                .diag.algorithm,
            "PB-SYM");
  EXPECT_EQ(estimate(t.points, t.domain, t.params, Algorithm::kPBSymPDSchedRep)
                .diag.algorithm,
            "PB-SYM-PD-SCHED-REP");
}

TEST(Diagnostics, DdReportsReplicationFactorAtLeastOne) {
  TinyInstance t = make_tiny(100, 3, 2);
  t.params.decomp = {4, 4, 4};
  const Result r = estimate(t.points, t.domain, t.params, Algorithm::kPBSymDD);
  EXPECT_GE(r.diag.replication_factor, 1.0);
  EXPECT_GT(r.diag.subdomains, 1);
  EXPECT_FALSE(r.diag.decomposition.empty());
}

TEST(Diagnostics, DdReplicationGrowsWithDecomposition) {
  TinyInstance t = make_tiny(300, 4, 3);
  t.params.decomp = {2, 2, 2};
  const double r2 = estimate(t.points, t.domain, t.params, Algorithm::kPBSymDD)
                        .diag.replication_factor;
  t.params.decomp = {6, 6, 6};
  const double r6 = estimate(t.points, t.domain, t.params, Algorithm::kPBSymDD)
                        .diag.replication_factor;
  EXPECT_GE(r6, r2);  // finer cuts replicate more (paper Fig. 9)
}

TEST(Diagnostics, PdUsesAtMost8Colors) {
  TinyInstance t = make_tiny(100, 2, 1);
  t.params.decomp = {4, 4, 4};
  const Result r = estimate(t.points, t.domain, t.params, Algorithm::kPBSymPD);
  EXPECT_GE(r.diag.num_colors, 1);
  EXPECT_LE(r.diag.num_colors, 8);
  EXPECT_GE(r.diag.total_work, r.diag.critical_path);
}

TEST(Diagnostics, PdRespectsMinimumSubdomainRule) {
  TinyInstance t = make_tiny(50, 6, 4);  // large bandwidth on a 24x20x16 grid
  t.params.decomp = {8, 8, 8};
  const Result r = estimate(t.points, t.domain, t.params, Algorithm::kPBSymPD);
  // 2Hs = 12 on a 24-voxel axis allows at most 2 parts.
  EXPECT_LE(r.diag.subdomains, 2 * 1 * 1 + 6);  // a<=2, b<=1, c<=1 -> <=2
}

TEST(Diagnostics, SchedColoringIsSmallAndTaskTimesRecorded) {
  TinyInstance t = make_tiny(200, 2, 1);
  t.params.decomp = {4, 4, 4};
  const Result r =
      estimate(t.points, t.domain, t.params, Algorithm::kPBSymPDSched);
  EXPECT_GE(r.diag.num_colors, 1);
  EXPECT_LE(r.diag.num_colors, 27);
  EXPECT_EQ(r.diag.task_seconds.size(),
            static_cast<std::size_t>(r.diag.subdomains));
}

TEST(Diagnostics, RepReplicatesUnderHotSpot) {
  // All mass in one subdomain: the critical path is that one task, so REP
  // must replicate it to meet the T1/(2P) target.
  TinyInstance t = make_tiny(1, 2, 1);
  t.points = data::generate_degenerate(t.domain, 400);
  t.params.decomp = {4, 4, 4};
  t.params.threads = 4;
  const Result r =
      estimate(t.points, t.domain, t.params, Algorithm::kPBSymPDRep);
  EXPECT_GT(r.diag.replication_factor, 1.0);
  EXPECT_GT(r.diag.extra_bytes, 0u);
  // Expanded DAG has more tasks than subdomains.
  EXPECT_GT(r.diag.task_seconds.size(),
            static_cast<std::size_t>(r.diag.subdomains));
}

TEST(Diagnostics, RepWithoutImbalanceDoesNotReplicate) {
  TinyInstance t = make_tiny(1, 1, 1);
  t.points = data::generate_uniform(t.domain, 600, 5);
  t.params.decomp = {3, 3, 3};
  t.params.threads = 1;  // T1/(2P) = T1/2 is an easy target
  const Result r =
      estimate(t.points, t.domain, t.params, Algorithm::kPBSymPDRep);
  EXPECT_DOUBLE_EQ(r.diag.replication_factor, 1.0);
  EXPECT_EQ(r.diag.extra_bytes, 0u);
}

TEST(Estimator, FacadeAndFreeFunctionAgree) {
  TinyInstance t = make_tiny(80, 3, 2);
  const Estimator est(Algorithm::kPBSym, t.params);
  const Result a = est.run(t.points, t.domain);
  const Result b = estimate(t.points, t.domain, t.params, Algorithm::kPBSym);
  EXPECT_DOUBLE_EQ(a.grid.max_abs_diff(b.grid), 0.0);
  EXPECT_EQ(est.algorithm(), Algorithm::kPBSym);
}

TEST(Estimator, ValidatesParamsAtConstruction) {
  Params bad;
  bad.hs = -1.0;
  EXPECT_THROW(Estimator(Algorithm::kPBSym, bad), std::invalid_argument);
  bad.hs = 1.0;
  bad.ht = 0.0;
  EXPECT_THROW(Estimator(Algorithm::kPBSym, bad), std::invalid_argument);
  bad.ht = 1.0;
  bad.threads = -2;
  EXPECT_THROW(Estimator(Algorithm::kPBSym, bad), std::invalid_argument);
}

TEST(Estimator, ValidatesDomainAtRun) {
  TinyInstance t = make_tiny(10, 2, 1);
  DomainSpec bad = t.domain;
  bad.sres = 0.0;
  const Estimator est(Algorithm::kPB, t.params);
  EXPECT_THROW((void)est.run(t.points, bad), std::invalid_argument);
}

TEST(AlgorithmNames, RoundTrip) {
  for (const Algorithm a : all_algorithms())
    EXPECT_EQ(algorithm_by_name(to_string(a)), a);
  EXPECT_THROW((void)algorithm_by_name("PB-NOPE"), std::invalid_argument);
}

TEST(AlgorithmNames, ParallelClassification) {
  EXPECT_FALSE(is_parallel(Algorithm::kVB));
  EXPECT_FALSE(is_parallel(Algorithm::kPBSym));
  EXPECT_TRUE(is_parallel(Algorithm::kPBSymDR));
  EXPECT_TRUE(is_parallel(Algorithm::kPBSymPDSchedRep));
}

TEST(ThreadCounts, MoreThreadsThanTasksIsFine) {
  TinyInstance t = make_tiny(40, 2, 1);
  t.params.threads = 16;
  t.params.decomp = {2, 1, 1};
  const Result r =
      estimate(t.points, t.domain, t.params, Algorithm::kPBSymPDSched);
  const Result ref = core::run_vb(t.points, t.domain, t.params);
  EXPECT_LE(r.grid.max_abs_diff(ref.grid), testing::grid_tolerance(ref.grid));
}

TEST(Determinism, RepeatedRunsAreBitIdentical) {
  TinyInstance t = make_tiny(120, 3, 2);
  for (const Algorithm a :
       {Algorithm::kPBSym, Algorithm::kPBSymDD, Algorithm::kPBSymPDSched}) {
    const Result r1 = estimate(t.points, t.domain, t.params, a);
    const Result r2 = estimate(t.points, t.domain, t.params, a);
    EXPECT_DOUBLE_EQ(r1.grid.max_abs_diff(r2.grid), 0.0) << to_string(a);
  }
}

}  // namespace
}  // namespace stkde
