#include "sched/simulator.hpp"

#include "sched/critical_path.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "util/rng.hpp"

namespace stkde::sched {
namespace {

TEST(Simulator, SingleProcessorMakespanIsTotalWork) {
  const StencilGraph g(3, 3, 3);
  const Coloring c = parity_coloring(g);
  std::vector<double> costs(27, 2.0);
  const SimResult r = simulate_dag_schedule(g, c, costs, 1);
  EXPECT_DOUBLE_EQ(r.makespan, 54.0);
}

TEST(Simulator, MakespanIsMonotoneNonIncreasingInP) {
  const StencilGraph g(4, 4, 4);
  util::Xoshiro256 rng(11);
  std::vector<double> costs(64);
  for (auto& x : costs) x = rng.uniform(0.1, 5.0);
  const Coloring c = greedy_coloring(g, ColoringOrder::kLoadDescending, costs);
  double prev = simulate_dag_schedule(g, c, costs, 1).makespan;
  for (const int P : {2, 4, 8, 16}) {
    const double m = simulate_dag_schedule(g, c, costs, P).makespan;
    EXPECT_LE(m, prev + 1e-9) << "P=" << P;
    prev = m;
  }
}

TEST(Simulator, MakespanRespectsCriticalPathLowerBound) {
  const StencilGraph g(4, 4, 4);
  util::Xoshiro256 rng(13);
  std::vector<double> costs(64);
  for (auto& x : costs) x = rng.uniform(0.1, 5.0);
  const Coloring c = greedy_coloring(g, natural_order(64));
  const DagMetrics m = critical_path(g, c, costs);
  const double span = simulate_dag_schedule(g, c, costs, 1000).makespan;
  EXPECT_GE(span, m.critical_path - 1e-9);
  // Graham: list schedule stays below the bound.
  for (const int P : {2, 4, 8}) {
    EXPECT_LE(simulate_dag_schedule(g, c, costs, P).makespan,
              m.graham_bound(P) + 1e-9);
  }
}

TEST(Simulator, StartTimesRespectDependencies) {
  const StencilGraph g(3, 1, 1);
  const Coloring c = parity_coloring(g);  // colors 0,1,0
  const std::vector<double> costs = {1.0, 2.0, 3.0};
  const SimResult r = simulate_dag_schedule(g, c, costs, 2);
  // Vertex 1 (color 1) depends on vertices 0 and 2 (color 0).
  EXPECT_GE(r.start[1], std::max(r.finish[0], r.finish[2]) - 1e-12);
}

TEST(Simulator, PhasedScheduleHasColorBarriers) {
  // Two colors; phase 2 cannot start before the slowest phase-1 task even
  // if processors idle.
  Coloring c;
  c.color = {0, 0, 1};
  c.num_colors = 2;
  const std::vector<double> costs = {5.0, 1.0, 1.0};
  const SimResult r = simulate_phased_schedule(c, costs, 4);
  EXPECT_DOUBLE_EQ(r.start[2], 5.0);
  EXPECT_DOUBLE_EQ(r.makespan, 6.0);
}

TEST(Simulator, PhasedWithinColorUsesLPT) {
  Coloring c;
  c.color = {0, 0, 0, 0};
  c.num_colors = 1;
  const std::vector<double> costs = {3.0, 3.0, 2.0, 2.0};
  // 2 processors, LPT: (3+2) and (3+2) -> makespan 5.
  EXPECT_DOUBLE_EQ(simulate_phased_schedule(c, costs, 2).makespan, 5.0);
}

TEST(Simulator, DagScheduleBeatsOrMatchesPhased) {
  // DAG execution relaxes the color barriers, so it can only be faster for
  // identical priorities/costs (the paper's PD vs PD-SCHED argument).
  const StencilGraph g(4, 4, 2);
  util::Xoshiro256 rng(17);
  std::vector<double> costs(32);
  for (auto& x : costs) x = rng.uniform(0.0, 4.0);
  const Coloring c = parity_coloring(g);
  for (const int P : {2, 4}) {
    const double phased = simulate_phased_schedule(c, costs, P).makespan;
    const double dag = simulate_dag_schedule(g, c, costs, P).makespan;
    EXPECT_LE(dag, phased + 1e-9) << "P=" << P;
  }
}

TEST(Simulator, ExplicitDagMatchesHandComputation) {
  // chain a(2) -> b(3); c(4) independent; P=2:
  // t0: a,c start. t2: b starts. t4: c ends. t5: b ends.
  std::vector<std::vector<std::int64_t>> succ(3);
  succ[0] = {1};
  const std::vector<double> costs = {2.0, 3.0, 4.0};
  const SimResult r = simulate_explicit_dag(succ, costs, 2);
  EXPECT_DOUBLE_EQ(r.makespan, 5.0);
  EXPECT_DOUBLE_EQ(r.start[1], 2.0);
}

TEST(Simulator, ExplicitDagCycleThrows) {
  std::vector<std::vector<std::int64_t>> succ(2);
  succ[0] = {1};
  succ[1] = {0};
  EXPECT_THROW(simulate_explicit_dag(succ, {1.0, 1.0}, 2), std::logic_error);
}

TEST(Simulator, RejectsBadInput) {
  const StencilGraph g(2, 2, 2);
  const Coloring c = parity_coloring(g);
  EXPECT_THROW(simulate_dag_schedule(g, c, std::vector<double>(3, 1.0), 2),
               std::invalid_argument);
  EXPECT_THROW(simulate_dag_schedule(g, c, std::vector<double>(8, 1.0), 0),
               std::invalid_argument);
}

TEST(Simulator, EmptyTasksGiveZeroMakespan) {
  EXPECT_DOUBLE_EQ(simulate_explicit_dag({}, {}, 4).makespan, 0.0);
}

TEST(Simulator, SpeedupShapeMatchesGraham) {
  // A hot task of half the work limits speedup to ~2 regardless of P —
  // the shape behind PollenUS Hr-Hb's PD ceiling (paper Fig. 12).
  Coloring c;
  c.color.assign(9, 0);
  c.num_colors = 1;
  std::vector<double> costs(9, 1.0);
  costs[0] = 8.0;
  const double t1 = simulate_phased_schedule(c, costs, 1).makespan;
  const double t16 = simulate_phased_schedule(c, costs, 16).makespan;
  EXPECT_DOUBLE_EQ(t1, 16.0);
  EXPECT_DOUBLE_EQ(t16, 8.0);  // bounded by the hot task
  EXPECT_DOUBLE_EQ(t1 / t16, 2.0);
}

}  // namespace
}  // namespace stkde::sched
