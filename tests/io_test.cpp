#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "io/grid_io.hpp"
#include "io/pgm.hpp"
#include "io/slice.hpp"
#include "io/vtk.hpp"
#include "util/rng.hpp"

namespace stkde::io {
namespace {

DensityGrid sample_grid() {
  DensityGrid g(GridDims{4, 3, 5});
  g.fill(0.0f);
  g.at(1, 2, 3) = 2.0f;
  g.at(0, 0, 0) = 1.0f;
  g.at(3, 1, 4) = 0.5f;
  return g;
}

TEST(Slice, TimeSliceExtractsPlane) {
  const DensityGrid g = sample_grid();
  const Field2D f = time_slice(g, 3);
  EXPECT_EQ(f.nx, 4);
  EXPECT_EQ(f.ny, 3);
  EXPECT_FLOAT_EQ(f.at(1, 2), 2.0f);
  EXPECT_FLOAT_EQ(f.at(0, 0), 0.0f);
}

TEST(Slice, TimeSliceOutOfRangeThrows) {
  const DensityGrid g = sample_grid();
  EXPECT_THROW(time_slice(g, 5), std::out_of_range);
  EXPECT_THROW(time_slice(g, -1), std::out_of_range);
}

TEST(Slice, AggregateSumsOverT) {
  const DensityGrid g = sample_grid();
  const Field2D f = time_aggregate(g);
  EXPECT_FLOAT_EQ(f.at(1, 2), 2.0f);
  EXPECT_FLOAT_EQ(f.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(f.at(3, 1), 0.5f);
  double total = 0;
  for (const float v : f.values) total += v;
  EXPECT_NEAR(total, g.sum(), 1e-6);
}

TEST(Slice, AggregateOfSlicesEqualsAggregate) {
  const DensityGrid g = sample_grid();
  const Field2D agg = time_aggregate(g);
  std::vector<double> manual(agg.values.size(), 0.0);
  for (std::int32_t t = 0; t < 5; ++t) {
    const Field2D s = time_slice(g, t);
    for (std::size_t i = 0; i < s.values.size(); ++i) manual[i] += s.values[i];
  }
  for (std::size_t i = 0; i < manual.size(); ++i)
    EXPECT_NEAR(manual[i], agg.values[i], 1e-6);
}

TEST(Slice, FieldCsvHasHeaderAndAllCells) {
  const Field2D f = time_aggregate(sample_grid());
  std::ostringstream os;
  write_field_csv(os, f);
  std::istringstream is(os.str());
  std::string line;
  std::getline(is, line);
  EXPECT_EQ(line, "x,y,value");
  int rows = 0;
  while (std::getline(is, line)) ++rows;
  EXPECT_EQ(rows, 12);  // 4 * 3
}

TEST(Pgm, WritesValidHeaderAndSize) {
  const std::string path = ::testing::TempDir() + "/stkde_test.pgm";
  write_pgm(path, time_aggregate(sample_grid()));
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::string magic;
  int w, h, maxv;
  in >> magic >> w >> h >> maxv;
  EXPECT_EQ(magic, "P5");
  EXPECT_EQ(w, 4);
  EXPECT_EQ(h, 3);
  EXPECT_EQ(maxv, 255);
  in.get();  // the single whitespace after maxval
  std::vector<char> pixels(static_cast<std::size_t>(w) * h);
  in.read(pixels.data(), static_cast<std::streamsize>(pixels.size()));
  EXPECT_EQ(in.gcount(), static_cast<std::streamsize>(pixels.size()));
  std::remove(path.c_str());
}

TEST(Pgm, PeakMapsToWhite) {
  const std::string path = ::testing::TempDir() + "/stkde_test_peak.pgm";
  Field2D f;
  f.nx = 2;
  f.ny = 1;
  f.values = {0.0f, 10.0f};
  write_pgm(path, f, 1.0);
  std::ifstream in(path, std::ios::binary);
  std::string magic;
  int w, h, maxv;
  in >> magic >> w >> h >> maxv;
  in.get();
  unsigned char px[2];
  in.read(reinterpret_cast<char*>(px), 2);
  EXPECT_EQ(px[0], 0);
  EXPECT_EQ(px[1], 255);
  std::remove(path.c_str());
}

TEST(Vtk, WritesHeaderWithDimensionsAndSpacing) {
  const std::string path = ::testing::TempDir() + "/stkde_test.vtk";
  const DensityGrid g = sample_grid();
  const DomainSpec spec{10, 20, 30, 4, 3, 5, 2.0, 1.5};
  write_vtk(path, g, spec);
  std::ifstream in(path, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("DATASET STRUCTURED_POINTS"), std::string::npos);
  EXPECT_NE(content.find("DIMENSIONS 4 3 5"), std::string::npos);
  EXPECT_NE(content.find("ORIGIN 10 20 30"), std::string::npos);
  EXPECT_NE(content.find("SPACING 2 2 1.5"), std::string::npos);
  EXPECT_NE(content.find("POINT_DATA 60"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Vtk, StrideSubsamples) {
  const std::string path = ::testing::TempDir() + "/stkde_test_stride.vtk";
  DensityGrid g(GridDims{8, 8, 8});
  g.fill(1.0f);
  const DomainSpec spec{0, 0, 0, 8, 8, 8, 1.0, 1.0};
  write_vtk(path, g, spec, 2);
  std::ifstream in(path, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("DIMENSIONS 4 4 4"), std::string::npos);
  EXPECT_NE(content.find("SPACING 2 2 2"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Vtk, RejectsBadStride) {
  const DensityGrid g = sample_grid();
  EXPECT_THROW(write_vtk("/tmp/x.vtk", g, DomainSpec{}, 0),
               std::invalid_argument);
}

TEST(GridIo, RoundTripsBitExactly) {
  const std::string path = ::testing::TempDir() + "/stkde_test.grid";
  DensityGrid g(Extent3{2, 6, 1, 4, 0, 7});
  util::Xoshiro256 rng(3);
  for (std::int64_t i = 0; i < g.size(); ++i)
    g.data()[i] = static_cast<float>(rng.uniform(-5, 5));
  save_grid(path, g);
  const DensityGrid loaded = load_grid(path);
  EXPECT_EQ(loaded.extent(), g.extent());
  EXPECT_DOUBLE_EQ(loaded.max_abs_diff(g), 0.0);
  std::remove(path.c_str());
}

TEST(GridIo, PaddedGridSavesDensePayload) {
  // The on-disk format is always dense: a padded grid must round-trip to a
  // file byte-identical with its packed twin's.
  const std::string path = ::testing::TempDir() + "/stkde_padded.grid";
  DensityGrid padded;
  padded.allocate(Extent3{0, 3, 0, 4, 0, 5}, RowPad::kCacheLine);
  ASSERT_TRUE(padded.padded());
  padded.fill(0.0f);
  util::Xoshiro256 rng(9);
  for (std::int32_t x = 0; x < 3; ++x)
    for (std::int32_t y = 0; y < 4; ++y)
      for (std::int32_t t = 0; t < 5; ++t)
        padded.at(x, y, t) = static_cast<float>(rng.uniform(-5, 5));
  save_grid(path, padded);
  const DensityGrid loaded = load_grid(path);
  EXPECT_FALSE(loaded.padded());
  EXPECT_EQ(loaded.extent(), padded.extent());
  EXPECT_DOUBLE_EQ(loaded.max_abs_diff(padded), 0.0);
  std::remove(path.c_str());
}

TEST(GridIo, BadMagicRejected) {
  const std::string path = ::testing::TempDir() + "/stkde_bad.grid";
  std::ofstream(path) << "not a grid file at all";
  EXPECT_THROW(load_grid(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(GridIo, TruncatedPayloadRejected) {
  const std::string path = ::testing::TempDir() + "/stkde_trunc.grid";
  DensityGrid g(GridDims{4, 4, 4});
  g.fill(1.0f);
  save_grid(path, g);
  // Truncate the file.
  std::ifstream in(path, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  std::ofstream(path, std::ios::binary)
      << content.substr(0, content.size() / 2);
  EXPECT_THROW(load_grid(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(GridIo, MissingFileThrows) {
  EXPECT_THROW(load_grid("/nonexistent/grid.bin"), std::runtime_error);
}

}  // namespace
}  // namespace stkde::io
