#include <gtest/gtest.h>

#include "helpers.hpp"
#include "model/advisor.hpp"
#include "model/calibration.hpp"
#include "model/cost_model.hpp"

namespace stkde::model {
namespace {

using stkde::testing::TinyInstance;
using stkde::testing::make_tiny;

MachineProfile test_profile() {
  MachineProfile m;  // defaults are plausible constants
  m.memory_bytes = 1ULL << 30;
  return m;
}

TEST(Calibration, ProducesPositiveRates) {
  const MachineProfile m = calibrate();
  EXPECT_GT(m.init_bytes_per_sec, 1e6);
  EXPECT_GT(m.reduce_bytes_per_sec, 1e6);
  EXPECT_GT(m.kernel_voxels_per_sec, 1e5);
  EXPECT_GT(m.table_entries_per_sec, 1e5);
  EXPECT_GT(m.bin_points_per_sec, 1e4);
  EXPECT_GT(m.memory_bytes, 0u);
  EXPECT_FALSE(m.to_string().empty());
}

TEST(Calibration, BudgetOverrideRespected) {
  const MachineProfile m = calibrate(12345);
  EXPECT_EQ(m.memory_bytes, 12345u);
}

TEST(CostModel, PredictionsArePositiveAndDecomposed) {
  TinyInstance t = make_tiny(200, 3, 2);
  const MachineProfile m = test_profile();
  for (const Algorithm a :
       {Algorithm::kPBSym, Algorithm::kPBSymDR, Algorithm::kPBSymDD,
        Algorithm::kPBSymPD, Algorithm::kPBSymPDSched,
        Algorithm::kPBSymPDRep, Algorithm::kPBSymPDSchedRep}) {
    const StrategyPrediction p = predict(m, t.points, t.domain, t.params, a);
    EXPECT_GT(p.seconds, 0.0) << to_string(a);
    EXPECT_GT(p.bytes, 0u) << to_string(a);
    EXPECT_NEAR(p.seconds,
                p.init_seconds + p.compute_seconds + p.overhead_seconds, 1e-12)
        << to_string(a);
    EXPECT_EQ(p.algorithm, a);
  }
}

TEST(CostModel, DrMemoryScalesWithThreads) {
  TinyInstance t = make_tiny(100, 2, 1);
  const MachineProfile m = test_profile();
  t.params.threads = 2;
  const auto p2 = predict(m, t.points, t.domain, t.params, Algorithm::kPBSymDR);
  t.params.threads = 8;
  const auto p8 = predict(m, t.points, t.domain, t.params, Algorithm::kPBSymDR);
  EXPECT_GT(p8.bytes, p2.bytes);
  EXPECT_EQ(p8.bytes, t.domain.dims().voxels() * 4 * 9u);
}

TEST(CostModel, DrInfeasibleUnderTinyMemory) {
  TinyInstance t = make_tiny(100, 2, 1);
  MachineProfile m = test_profile();
  m.memory_bytes = 40 * 1024;  // grid is ~30 KiB; P+1 replicas cannot fit
  t.params.threads = 8;
  const auto p = predict(m, t.points, t.domain, t.params, Algorithm::kPBSymDR);
  EXPECT_FALSE(p.feasible);
  const auto seq = predict(m, t.points, t.domain, t.params, Algorithm::kPBSym);
  EXPECT_TRUE(seq.feasible);
}

TEST(CostModel, ComputeBoundInstanceFavorsParallelism) {
  // Many points, large bandwidth, small grid: compute dominates, so DR's
  // predicted time at 8 threads beats sequential PB-SYM.
  TinyInstance t = make_tiny(5000, 6, 4);
  t.params.threads = 8;
  const MachineProfile m = test_profile();
  const auto seq = predict(m, t.points, t.domain, t.params, Algorithm::kPBSym);
  const auto dr = predict(m, t.points, t.domain, t.params, Algorithm::kPBSymDR);
  EXPECT_LT(dr.seconds, seq.seconds);
}

TEST(CostModel, InitBoundInstancePunishesDr) {
  // Huge grid, few points (the Flu regime): DR's P-fold init/reduce makes it
  // slower than sequential PB-SYM — the paper's Fig. 8 "speedup < 1".
  const DomainSpec dom{0, 0, 0, 200, 200, 100, 1.0, 1.0};
  const PointSet pts = data::generate_uniform(dom, 50, 3);
  Params params;
  params.hs = 1.0;
  params.ht = 1.0;
  params.threads = 8;
  const MachineProfile m = test_profile();
  const auto seq = predict(m, pts, dom, params, Algorithm::kPBSym);
  const auto dr = predict(m, pts, dom, params, Algorithm::kPBSymDR);
  EXPECT_GT(dr.seconds, seq.seconds);
}

TEST(CostModel, DdNoteReportsReplicationFactor) {
  TinyInstance t = make_tiny(300, 3, 2);
  t.params.decomp = {4, 4, 4};
  const auto p = predict(test_profile(), t.points, t.domain, t.params,
                         Algorithm::kPBSymDD);
  EXPECT_NE(p.note.find("replication factor"), std::string::npos);
}

TEST(Advisor, RanksFeasibleFirstAndSorted) {
  TinyInstance t = make_tiny(400, 3, 2);
  t.params.threads = 4;
  const Advice a = advise(test_profile(), t.points, t.domain, t.params);
  ASSERT_FALSE(a.ranking.empty());
  ASSERT_EQ(a.ranking.size(), a.configs.size());
  bool seen_infeasible = false;
  double prev = 0.0;
  for (std::size_t i = 0; i < a.ranking.size(); ++i) {
    if (!a.ranking[i].feasible) seen_infeasible = true;
    else EXPECT_FALSE(seen_infeasible) << "feasible after infeasible";
    if (i > 0 && a.ranking[i].feasible == a.ranking[i - 1].feasible) {
      EXPECT_GE(a.ranking[i].seconds, prev - 1e-12);
    }
    prev = a.ranking[i].seconds;
  }
}

TEST(Advisor, BestConfigIsRunnable) {
  TinyInstance t = make_tiny(200, 2, 1);
  t.params.threads = 2;
  const Advice a = advise(test_profile(), t.points, t.domain, t.params,
                          {2, 4});
  const Result ref = core::run_vb(t.points, t.domain, t.params);
  const Result r = estimate(t.points, t.domain, a.best_config(),
                            a.best().algorithm);
  EXPECT_LE(r.grid.max_abs_diff(ref.grid),
            stkde::testing::grid_tolerance(ref.grid));
}

TEST(Advisor, SweepsRequestedDecompositions) {
  TinyInstance t = make_tiny(100, 2, 1);
  const Advice a = advise(test_profile(), t.points, t.domain, t.params,
                          {2, 8});
  // 2 decomposition-free + 2 sweeps * 4 strategies = 10 candidates.
  EXPECT_EQ(a.ranking.size(), 10u);
}

}  // namespace
}  // namespace stkde::model
