#include <gtest/gtest.h>

#include "data/generator.hpp"
#include "geom/voxel_mapper.hpp"
#include "partition/binning.hpp"
#include "partition/decomposition.hpp"
#include "partition/load.hpp"

namespace stkde {
namespace {

TEST(Decomposition, UniformPartsCoverGridExactly) {
  const GridDims d{100, 64, 33};
  const Decomposition dec = Decomposition::uniform(d, DecompRequest{4, 8, 5});
  EXPECT_EQ(dec.a(), 4);
  EXPECT_EQ(dec.b(), 8);
  EXPECT_EQ(dec.c(), 5);
  // Subdomains tile the grid: volumes sum to total, no gaps at the seams.
  std::int64_t vol = 0;
  for (std::int64_t f = 0; f < dec.count(); ++f) vol += dec.subdomain(f).volume();
  EXPECT_EQ(vol, d.voxels());
  EXPECT_EQ(dec.subdomain(0, 0, 0).xlo, 0);
  EXPECT_EQ(dec.subdomain(3, 0, 0).xhi, 100);
}

TEST(Decomposition, PartsClampToGridSize) {
  const GridDims d{3, 3, 3};
  const Decomposition dec = Decomposition::uniform(d, DecompRequest{64, 64, 64});
  EXPECT_EQ(dec.a(), 3);
  EXPECT_EQ(dec.b(), 3);
  EXPECT_EQ(dec.c(), 3);
}

TEST(Decomposition, ClampedEnforcesTwiceBandwidthRule) {
  const GridDims d{128, 128, 64};
  // Hs = 8 => subdomains must span >= 16 voxels => at most 8 parts in x/y.
  const Decomposition dec =
      Decomposition::clamped(d, DecompRequest{64, 64, 64}, 8, 4);
  EXPECT_LE(dec.a(), 8);
  EXPECT_LE(dec.b(), 8);
  EXPECT_LE(dec.c(), 8);
  EXPECT_GE(dec.min_width_x(), 16);
  EXPECT_GE(dec.min_width_y(), 16);
  EXPECT_GE(dec.min_width_t(), 8);
}

TEST(Decomposition, ClampedKeepsSmallRequestsIntact) {
  const GridDims d{128, 128, 128};
  const Decomposition dec =
      Decomposition::clamped(d, DecompRequest{2, 2, 2}, 4, 4);
  EXPECT_EQ(dec.a(), 2);
  EXPECT_EQ(dec.b(), 2);
  EXPECT_EQ(dec.c(), 2);
}

TEST(Decomposition, ClampedDegeneratesToSingleSubdomain) {
  // Bandwidth half the grid: no decomposition is safe.
  const GridDims d{16, 16, 16};
  const Decomposition dec =
      Decomposition::clamped(d, DecompRequest{8, 8, 8}, 8, 8);
  EXPECT_EQ(dec.count(), 1);
}

TEST(Decomposition, BinOfIsInverseOfSubdomain) {
  const GridDims d{97, 53, 31};
  const Decomposition dec = Decomposition::uniform(d, DecompRequest{7, 5, 3});
  for (std::int32_t a = 0; a < dec.a(); ++a) {
    const Extent3 e = dec.subdomain(a, 0, 0);
    EXPECT_EQ(dec.bin_x(e.xlo), a);
    EXPECT_EQ(dec.bin_x(e.xhi - 1), a);
  }
  // Every voxel maps into a bin whose extent contains it.
  for (std::int32_t X = 0; X < d.gx; ++X) {
    const std::int32_t a = dec.bin_x(X);
    const Extent3 e = dec.subdomain(a, 0, 0);
    EXPECT_GE(X, e.xlo);
    EXPECT_LT(X, e.xhi);
  }
}

TEST(Decomposition, FlatCoordsRoundTrip) {
  const Decomposition dec =
      Decomposition::uniform(GridDims{32, 32, 32}, DecompRequest{3, 4, 5});
  for (std::int64_t f = 0; f < dec.count(); ++f) {
    std::int32_t a, b, c;
    dec.coords(f, a, b, c);
    EXPECT_EQ(dec.flat(a, b, c), f);
  }
}

TEST(Decomposition, ByCellSizeUsesFixedCells) {
  const Decomposition dec = Decomposition::by_cell_size(GridDims{10, 10, 10},
                                                        4, 4, 3);
  EXPECT_EQ(dec.a(), 3);  // cells [0,4) [4,8) [8,10)
  EXPECT_EQ(dec.c(), 4);  // [0,3) [3,6) [6,9) [9,10)
  EXPECT_EQ(dec.subdomain(0, 0, 0).xhi, 4);
  EXPECT_EQ(dec.subdomain(2, 0, 0).xhi, 10);
}

TEST(Decomposition, RejectsBadRequests) {
  EXPECT_THROW(
      Decomposition::uniform(GridDims{8, 8, 8}, DecompRequest{0, 1, 1}),
      std::invalid_argument);
}

// ---- binning ---------------------------------------------------------------

DomainSpec unit_domain(std::int32_t g) {
  return DomainSpec{0, 0, 0, static_cast<double>(g), static_cast<double>(g),
                    static_cast<double>(g), 1.0, 1.0};
}

TEST(Binning, OwnerBinningIsAPartition) {
  const DomainSpec dom = unit_domain(32);
  const VoxelMapper map(dom);
  const Decomposition dec = Decomposition::uniform(dom.dims(), {4, 4, 4});
  const PointSet pts = data::generate_uniform(dom, 500, 3);
  const PointBins bins = bin_by_owner(pts, map, dec);
  EXPECT_EQ(bins.total_entries, pts.size());
  EXPECT_DOUBLE_EQ(bins.replication_factor(pts.size()), 1.0);
  // Each point is in exactly the bin owning its voxel.
  std::size_t count = 0;
  for (std::size_t v = 0; v < bins.bins.size(); ++v) {
    for (const std::uint32_t i : bins.bins[v]) {
      EXPECT_EQ(dec.owner(map.voxel_of(pts[i])),
                static_cast<std::int64_t>(v));
      ++count;
    }
  }
  EXPECT_EQ(count, pts.size());
}

TEST(Binning, IntersectionBinningIncludesOwner) {
  const DomainSpec dom = unit_domain(32);
  const VoxelMapper map(dom);
  const Decomposition dec = Decomposition::uniform(dom.dims(), {4, 4, 4});
  const PointSet pts = data::generate_uniform(dom, 300, 9);
  const PointBins dd = bin_by_intersection(pts, map, dec, 3, 2);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const auto owner = static_cast<std::size_t>(dec.owner(map.voxel_of(pts[i])));
    const auto& bin = dd.bins[owner];
    EXPECT_NE(std::find(bin.begin(), bin.end(), static_cast<std::uint32_t>(i)),
              bin.end());
  }
}

TEST(Binning, IntersectionBinningMatchesCylinderOverlap) {
  const DomainSpec dom = unit_domain(24);
  const VoxelMapper map(dom);
  const Decomposition dec = Decomposition::uniform(dom.dims(), {3, 3, 3});
  const PointSet pts = data::generate_uniform(dom, 200, 21);
  const std::int32_t Hs = 4, Ht = 2;
  const PointBins dd = bin_by_intersection(pts, map, dec, Hs, Ht);
  const Extent3 whole = Extent3::whole(dom.dims());
  // Reference: brute-force intersection test for every (point, subdomain).
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const Extent3 cyl =
        Extent3::cylinder(map.voxel_of(pts[i]), Hs, Ht).intersect(whole);
    for (std::int64_t v = 0; v < dec.count(); ++v) {
      const bool expected = dec.subdomain(v).intersects(cyl);
      const auto& bin = dd.bins[static_cast<std::size_t>(v)];
      const bool present =
          std::find(bin.begin(), bin.end(), static_cast<std::uint32_t>(i)) !=
          bin.end();
      ASSERT_EQ(present, expected) << "point " << i << " subdomain " << v;
    }
  }
}

TEST(Binning, ReplicationGrowsWithBandwidth) {
  const DomainSpec dom = unit_domain(64);
  const VoxelMapper map(dom);
  const Decomposition dec = Decomposition::uniform(dom.dims(), {8, 8, 8});
  const PointSet pts = data::generate_uniform(dom, 2000, 7);
  const double r_small =
      bin_by_intersection(pts, map, dec, 1, 1).replication_factor(pts.size());
  const double r_large =
      bin_by_intersection(pts, map, dec, 6, 6).replication_factor(pts.size());
  EXPECT_GE(r_small, 1.0);
  EXPECT_GT(r_large, r_small);
}

TEST(Binning, SingleSubdomainHasNoReplication) {
  const DomainSpec dom = unit_domain(16);
  const VoxelMapper map(dom);
  const Decomposition dec = Decomposition::uniform(dom.dims(), {1, 1, 1});
  const PointSet pts = data::generate_uniform(dom, 100, 2);
  const PointBins dd = bin_by_intersection(pts, map, dec, 5, 5);
  EXPECT_DOUBLE_EQ(dd.replication_factor(pts.size()), 1.0);
}

TEST(Binning, LoadsMatchBinSizes) {
  const DomainSpec dom = unit_domain(16);
  const VoxelMapper map(dom);
  const Decomposition dec = Decomposition::uniform(dom.dims(), {2, 2, 2});
  const PointSet pts = data::generate_uniform(dom, 100, 5);
  const PointBins bins = bin_by_owner(pts, map, dec);
  const auto loads = bins.loads();
  std::uint64_t total = 0;
  for (std::size_t v = 0; v < loads.size(); ++v) {
    EXPECT_EQ(loads[v], bins.bins[v].size());
    total += loads[v];
  }
  EXPECT_EQ(total, pts.size());
}

// ---- load model ------------------------------------------------------------

TEST(Load, NeighborhoodSumsStencilNeighbors) {
  const Decomposition dec =
      Decomposition::uniform(GridDims{30, 30, 30}, {3, 3, 3});
  std::vector<double> own(27, 1.0);
  const auto nb = neighborhood_loads(dec, own);
  // Center subdomain sees all 27; corner sees 8.
  EXPECT_DOUBLE_EQ(nb[static_cast<std::size_t>(dec.flat(1, 1, 1))], 27.0);
  EXPECT_DOUBLE_EQ(nb[static_cast<std::size_t>(dec.flat(0, 0, 0))], 8.0);
}

TEST(Load, ClusteredPointsShowImbalance) {
  const DomainSpec dom = unit_domain(64);
  const VoxelMapper map(dom);
  const Decomposition dec = Decomposition::uniform(dom.dims(), {4, 4, 4});
  const PointSet hot = data::generate_degenerate(dom, 1000);
  const auto loads = point_count_loads(bin_by_owner(hot, map, dec));
  EXPECT_DOUBLE_EQ(imbalance(loads).imbalance, 64.0);  // all in one bin
}

}  // namespace
}  // namespace stkde
