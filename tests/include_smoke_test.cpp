/// Smoke test: the umbrella header must compile standalone — no hidden
/// dependency on other headers being included first — and expose the core
/// public types. Keeps the public API surface buildable as modules evolve.
#include "stkde.hpp"

#include <gtest/gtest.h>

#include <type_traits>

TEST(IncludeSmoke, UmbrellaHeaderExposesCoreTypes) {
  stkde::Params params;
  (void)params;
  EXPECT_TRUE((std::is_default_constructible_v<stkde::DomainSpec>));
  EXPECT_TRUE((std::is_default_constructible_v<stkde::PointSet>));
}
