#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace stkde::util {
namespace {

TEST(Table, PrintsHeadersAndRule) {
  Table t({"name", "value"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("value"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, AlignsColumnsToWidestCell) {
  Table t({"a", "b"});
  t.row().cell("wide-cell-content").cell("x");
  t.row().cell("s").cell("y");
  std::ostringstream os;
  t.print(os);
  std::istringstream is(os.str());
  std::string l1, l2, l3, l4;
  std::getline(is, l1);  // header
  std::getline(is, l2);  // rule
  std::getline(is, l3);
  std::getline(is, l4);
  // Column 2 starts at the same offset on both data rows.
  EXPECT_EQ(l3.find(" x"), l4.find(" y"));
}

TEST(Table, NumericCellsFormatWithPrecision) {
  Table t({"v"});
  t.row().cell(3.14159, 2);
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("3.14"), std::string::npos);
  EXPECT_EQ(os.str().find("3.142"), std::string::npos);
}

TEST(Table, IntegerCellOverloads) {
  Table t({"a", "b", "c"});
  t.row().cell(42).cell(std::uint64_t{7}).cell(std::int64_t{-3});
  EXPECT_EQ(t.rows(), 1u);
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("42"), std::string::npos);
  EXPECT_NE(os.str().find("-3"), std::string::npos);
}

TEST(FormatSeconds, PicksAdaptiveUnits) {
  EXPECT_NE(format_seconds(2.5).find("s"), std::string::npos);
  EXPECT_NE(format_seconds(0.0025).find("ms"), std::string::npos);
  EXPECT_NE(format_seconds(2.5e-6).find("us"), std::string::npos);
}

TEST(FormatFixed, RoundsHalfAway) {
  EXPECT_EQ(format_fixed(1.25, 1), "1.2");  // banker's-ish via printf
  EXPECT_EQ(format_fixed(1.0, 3), "1.000");
}

}  // namespace
}  // namespace stkde::util
