// The keystone correctness suite: every algorithm must produce the same
// density volume as the gold-standard VB (paper Algorithm 1), for every
// kernel, bandwidth, decomposition, and thread count — VB is the paper's
// definition of the estimate and all other algorithms are reorganizations
// of the same arithmetic.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>

#include "core/detail/common.hpp"
#include "core/detail/scatter.hpp"
#include "helpers.hpp"

namespace stkde {
namespace {

using testing::TinyInstance;
using testing::grid_tolerance;
using testing::make_tiny;

struct EquivCase {
  Algorithm alg;
  std::string kernel = "epanechnikov";
  std::int32_t Hs = 3;
  std::int32_t Ht = 2;
  DecompRequest decomp{3, 3, 3};
  int threads = 2;

  [[nodiscard]] std::string name() const {
    std::ostringstream os;
    std::string a = to_string(alg);
    for (auto& c : a)
      if (c == '-') c = '_';
    std::string k = kernel;
    for (auto& c : k)
      if (c == '-') c = '_';
    os << a << "_" << k << "_Hs" << Hs << "_Ht" << Ht << "_d" << decomp.a
       << "x" << decomp.b << "x" << decomp.c << "_t" << threads;
    return os.str();
  }
};

// VB reference grids are cached per (kernel, Hs, Ht) — VB is slow by design.
const DensityGrid& reference_grid(const std::string& kernel, std::int32_t Hs,
                                  std::int32_t Ht) {
  static std::map<std::string, Result> cache;
  std::ostringstream key;
  key << kernel << "/" << Hs << "/" << Ht;
  auto it = cache.find(key.str());
  if (it == cache.end()) {
    TinyInstance t = make_tiny(150, Hs, Ht);
    t.params.kernel = kernels::kernel_by_name(kernel);
    it = cache.emplace(key.str(), core::run_vb(t.points, t.domain, t.params))
             .first;
  }
  return it->second.grid;
}

class EquivalenceTest : public ::testing::TestWithParam<EquivCase> {};

TEST_P(EquivalenceTest, MatchesVoxelBasedReference) {
  const EquivCase& c = GetParam();
  TinyInstance t = make_tiny(150, c.Hs, c.Ht);
  t.params.kernel = kernels::kernel_by_name(c.kernel);
  t.params.decomp = c.decomp;
  t.params.threads = c.threads;
  const Result r = estimate(t.points, t.domain, t.params, c.alg);
  const DensityGrid& ref = reference_grid(c.kernel, c.Hs, c.Ht);
  EXPECT_LE(r.grid.max_abs_diff(ref), grid_tolerance(ref))
      << to_string(c.alg) << " diverges from VB";
}

std::string case_name(const ::testing::TestParamInfo<EquivCase>& info) {
  return info.param.name();
}

// --- sequential algorithms x kernels x bandwidths ---------------------------

std::vector<EquivCase> sequential_cases() {
  std::vector<EquivCase> cases;
  const std::vector<Algorithm> algs = {Algorithm::kVBDec, Algorithm::kPB,
                                       Algorithm::kPBDisk, Algorithm::kPBBar,
                                       Algorithm::kPBSym};
  const std::vector<std::string> kernels = {"epanechnikov", "as-printed",
                                            "quartic"};
  const std::vector<std::pair<std::int32_t, std::int32_t>> bws = {{1, 1},
                                                                  {3, 2},
                                                                  {6, 4}};
  for (const auto alg : algs)
    for (const auto& k : kernels)
      for (const auto& [hs, ht] : bws) {
        EquivCase c;
        c.alg = alg;
        c.kernel = k;
        c.Hs = hs;
        c.Ht = ht;
        cases.push_back(c);
      }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sequential, EquivalenceTest,
                         ::testing::ValuesIn(sequential_cases()), case_name);

// --- parallel algorithms x decompositions x threads -------------------------

std::vector<EquivCase> parallel_cases() {
  std::vector<EquivCase> cases;
  const std::vector<Algorithm> algs = {
      Algorithm::kPBSymDR,      Algorithm::kPBSymDD,
      Algorithm::kPBSymPD,      Algorithm::kPBSymPDSched,
      Algorithm::kPBSymPDRep,   Algorithm::kPBSymPDSchedRep};
  const std::vector<DecompRequest> decomps = {
      {1, 1, 1}, {2, 2, 2}, {3, 2, 4}, {5, 5, 5}};
  for (const auto alg : algs)
    for (const auto& d : decomps)
      for (const int threads : {1, 3}) {
        EquivCase c;
        c.alg = alg;
        c.decomp = d;
        c.threads = threads;
        cases.push_back(c);
      }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Parallel, EquivalenceTest,
                         ::testing::ValuesIn(parallel_cases()), case_name);

// --- parallel algorithms with non-default kernels ---------------------------

std::vector<EquivCase> parallel_kernel_cases() {
  std::vector<EquivCase> cases;
  for (const auto alg : {Algorithm::kPBSymDD, Algorithm::kPBSymPDSched,
                         Algorithm::kPBSymPDSchedRep})
    for (const std::string& k :
         {std::string("uniform"), std::string("gaussian-truncated"),
          std::string("triangular")}) {
      EquivCase c;
      c.alg = alg;
      c.kernel = k;
      c.Hs = 4;
      c.Ht = 2;
      cases.push_back(c);
    }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(ParallelKernels, EquivalenceTest,
                         ::testing::ValuesIn(parallel_kernel_cases()),
                         case_name);

// --- SIMD scatter core vs retained scalar reference -------------------------
//
// The float/span/omp-simd scatter core must reproduce the pre-SIMD scalar
// double-precision loop (scatter_sym_ref) within 1e-5 relative error, for
// every PB variant, every kernel, and clipped subdomain extents (the
// PB-SYM-DD accumulation path).

DensityGrid scalar_reference_grid(const TinyInstance& t) {
  const core::detail::RunSetup s(t.points, t.domain, t.params);
  DensityGrid g;
  g.allocate(s.map.dims());
  g.fill(0.0f);
  const Extent3 whole = Extent3::whole(s.map.dims());
  core::detail::with_kernel(t.params.kernel, [&](const auto& k) {
    kernels::SpatialInvariantRef ks;
    kernels::TemporalInvariantRef kt;
    for (const Point& pt : t.points)
      core::detail::scatter_sym_ref(g, whole, s.map, k, pt, t.params.hs,
                                    t.params.ht, s.Hs, s.Ht, s.scale, ks, kt);
  });
  return g;
}

double scatter_core_tolerance(const DensityGrid& ref) {
  return 1e-5 * static_cast<double>(std::max(ref.max_value(), 0.0f)) + 1e-12;
}

class ScatterCoreRefTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ScatterCoreRefTest, AllPBVariantsMatchScalarReference) {
  for (const auto& [Hs, Ht] :
       std::vector<std::pair<std::int32_t, std::int32_t>>{{1, 1}, {3, 2},
                                                          {5, 3}}) {
    TinyInstance t = make_tiny(150, Hs, Ht);
    t.params.kernel = kernels::kernel_by_name(GetParam());
    const DensityGrid ref = scalar_reference_grid(t);
    const double tol = scatter_core_tolerance(ref);
    for (const Algorithm alg : {Algorithm::kPB, Algorithm::kPBDisk,
                                Algorithm::kPBBar, Algorithm::kPBSym}) {
      const Result r = estimate(t.points, t.domain, t.params, alg);
      EXPECT_LE(r.grid.max_abs_diff(ref), tol)
          << to_string(alg) << " diverges from scatter_sym_ref at Hs=" << Hs
          << " Ht=" << Ht;
    }
  }
}

TEST_P(ScatterCoreRefTest, ClippedSubdomainAccumulationMatchesScalarReference) {
  // The PB-SYM-DD path (src/core/dd.cpp): invariant tables rebuilt per
  // (point, subdomain) pair, accumulation clipped to subdomain extents.
  TinyInstance t = make_tiny(150, 4, 2);
  t.params.kernel = kernels::kernel_by_name(GetParam());
  const DensityGrid ref = scalar_reference_grid(t);
  const double tol = scatter_core_tolerance(ref);
  for (const DecompRequest dec :
       {DecompRequest{2, 2, 2}, DecompRequest{3, 2, 4}}) {
    t.params.decomp = dec;
    t.params.threads = 3;
    const Result r = estimate(t.points, t.domain, t.params,
                              Algorithm::kPBSymDD);
    EXPECT_LE(r.grid.max_abs_diff(ref), tol)
        << "PB-SYM-DD diverges from scatter_sym_ref at decomp " << dec.a << "x"
        << dec.b << "x" << dec.c;
  }
}

TEST_P(ScatterCoreRefTest, SpanStatisticsAreReportedAndConsistent) {
  TinyInstance t = make_tiny(80, 4, 2);
  t.params.kernel = kernels::kernel_by_name(GetParam());
  const Result r = estimate(t.points, t.domain, t.params, Algorithm::kPBSym);
  // Every point lands inside the tiny domain, so tables were filled.
  EXPECT_GT(r.diag.table_cells, 0);
  EXPECT_GE(r.diag.table_cells, r.diag.span_cells);
  EXPECT_GE(r.diag.span_cells, r.diag.table_nonzero);
  EXPECT_GT(r.diag.table_nonzero, 0);
  // The span layout must skip a meaningful corner fraction for Hs >= 4
  // (full square minus disk is ~21% as Hs grows).
  EXPECT_GT(r.diag.skipped_lane_fraction(), 0.05);
  EXPECT_GE(r.diag.wasted_lane_fraction(), 0.0);
  EXPECT_LT(r.diag.wasted_lane_fraction(), 0.5);
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, ScatterCoreRefTest,
    ::testing::Values("epanechnikov", "as-printed", "uniform", "triangular",
                      "quartic", "gaussian-truncated"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string s = info.param;
      for (auto& c : s)
        if (c == '-') c = '_';
      return s;
    });

// --- structural edge cases ---------------------------------------------------

class EdgeCaseTest : public ::testing::TestWithParam<Algorithm> {};

TEST_P(EdgeCaseTest, EmptyPointSetGivesZeroGrid) {
  TinyInstance t = make_tiny(0, 2, 1);
  t.points.clear();
  const Result r = estimate(t.points, t.domain, t.params, GetParam());
  EXPECT_DOUBLE_EQ(r.grid.sum(), 0.0);
  EXPECT_EQ(r.grid.dims(), t.domain.dims());
}

TEST_P(EdgeCaseTest, SinglePointMatchesVB) {
  TinyInstance t = make_tiny(1, 4, 3);
  t.points = {Point{12.3, 10.7, 8.2}};
  const Result ref = core::run_vb(t.points, t.domain, t.params);
  const Result r = estimate(t.points, t.domain, t.params, GetParam());
  EXPECT_LE(r.grid.max_abs_diff(ref.grid), grid_tolerance(ref.grid));
}

TEST_P(EdgeCaseTest, DuplicatePointsMatchVB) {
  TinyInstance t = make_tiny(1, 3, 2);
  t.points = PointSet(20, Point{11.0, 9.0, 7.0});  // 20 identical events
  const Result ref = core::run_vb(t.points, t.domain, t.params);
  const Result r = estimate(t.points, t.domain, t.params, GetParam());
  EXPECT_LE(r.grid.max_abs_diff(ref.grid), grid_tolerance(ref.grid));
}

TEST_P(EdgeCaseTest, PointsOutsideDomainMatchVB) {
  // Events slightly outside the modeled box still radiate density into it;
  // all algorithms must agree (the mapper clamps, the kernels cut off).
  TinyInstance t = make_tiny(1, 4, 3);
  t.points = {Point{-1.5, 10.0, 8.0}, Point{25.0, -2.0, 8.0},
              Point{12.0, 21.0, 17.0}, Point{12.0, 10.0, -0.7},
              Point{100.0, 100.0, 100.0}};  // far outside: contributes nothing
  const Result ref = core::run_vb(t.points, t.domain, t.params);
  const Result r = estimate(t.points, t.domain, t.params, GetParam());
  EXPECT_LE(r.grid.max_abs_diff(ref.grid), grid_tolerance(ref.grid));
}

TEST_P(EdgeCaseTest, PointsOnDomainBordersMatchVB) {
  TinyInstance t = make_tiny(1, 3, 2);
  t.points = {Point{0.0, 0.0, 0.0}, Point{24.0, 20.0, 16.0},
              Point{0.0, 20.0, 8.0}, Point{24.0, 0.0, 16.0}};
  const Result ref = core::run_vb(t.points, t.domain, t.params);
  const Result r = estimate(t.points, t.domain, t.params, GetParam());
  EXPECT_LE(r.grid.max_abs_diff(ref.grid), grid_tolerance(ref.grid));
}

TEST_P(EdgeCaseTest, BandwidthLargerThanDomainMatchesVB) {
  TinyInstance t = make_tiny(30, 1, 1);
  t.params.hs = 40.0;  // cylinder covers the whole grid
  t.params.ht = 20.0;
  const Result ref = core::run_vb(t.points, t.domain, t.params);
  const Result r = estimate(t.points, t.domain, t.params, GetParam());
  EXPECT_LE(r.grid.max_abs_diff(ref.grid), grid_tolerance(ref.grid));
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, EdgeCaseTest, ::testing::ValuesIn(all_algorithms()),
    [](const ::testing::TestParamInfo<Algorithm>& info) {
      std::string s = to_string(info.param);
      for (auto& c : s)
        if (c == '-') c = '_';
      return s;
    });

}  // namespace
}  // namespace stkde
