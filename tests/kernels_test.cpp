#include "kernels/kernels.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace stkde::kernels {
namespace {

// ---- typed tests over every kernel ---------------------------------------

template <typename K>
class KernelTypedTest : public ::testing::Test {};

using AllKernels =
    ::testing::Types<EpanechnikovKernel, AsPrintedKernel, UniformKernel,
                     TriangularKernel, QuarticKernel, GaussianTruncatedKernel>;
TYPED_TEST_SUITE(KernelTypedTest, AllKernels);

TYPED_TEST(KernelTypedTest, SpatialVanishesOutsideUnitDisk) {
  const TypeParam k;
  EXPECT_DOUBLE_EQ(k.spatial(1.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(k.spatial(0.8, 0.8), 0.0);
  EXPECT_DOUBLE_EQ(k.spatial(-2.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(k.spatial(0.0, -1.0), 0.0);
}

TYPED_TEST(KernelTypedTest, SpatialPositiveAtCenter) {
  const TypeParam k;
  EXPECT_GT(k.spatial(0.0, 0.0), 0.0);
}

TYPED_TEST(KernelTypedTest, TemporalVanishesOutsideBar) {
  const TypeParam k;
  EXPECT_DOUBLE_EQ(k.temporal(1.5), 0.0);
  EXPECT_DOUBLE_EQ(k.temporal(-1.0001), 0.0);
}

TYPED_TEST(KernelTypedTest, TemporalPositiveAtCenter) {
  const TypeParam k;
  EXPECT_GT(k.temporal(0.0), 0.0);
}

TYPED_TEST(KernelTypedTest, KernelsAreNonNegativeEverywhere) {
  const TypeParam k;
  for (double u = -1.5; u <= 1.5; u += 0.1)
    for (double v = -1.5; v <= 1.5; v += 0.1)
      EXPECT_GE(k.spatial(u, v), 0.0) << u << "," << v;
  for (double w = -1.5; w <= 1.5; w += 0.01)
    EXPECT_GE(k.temporal(w), 0.0) << w;
}

TYPED_TEST(KernelTypedTest, NameIsNonEmptyAndRoundTrips) {
  EXPECT_FALSE(TypeParam::name().empty());
  const KernelVariant v = kernel_by_name(TypeParam::name());
  EXPECT_EQ(kernel_name(v), TypeParam::name());
}

// ---- normalization --------------------------------------------------------

// Standard kernels integrate to 1 over their support (the STKDE prefactor
// 1/(n hs^2 ht) then makes the whole estimate integrate to 1).
TEST(KernelNormalization, EpanechnikovIntegratesToOne) {
  const EpanechnikovKernel k;
  EXPECT_NEAR(spatial_integral(k, 800), 1.0, 1e-2);
  EXPECT_NEAR(temporal_integral(k, 100000), 1.0, 1e-6);
}

TEST(KernelNormalization, UniformIntegratesToOne) {
  const UniformKernel k;
  EXPECT_NEAR(spatial_integral(k, 800), 1.0, 1e-2);
  EXPECT_NEAR(temporal_integral(k, 100000), 1.0, 1e-6);
}

TEST(KernelNormalization, TriangularIntegratesToOne) {
  const TriangularKernel k;
  EXPECT_NEAR(spatial_integral(k, 800), 1.0, 1e-2);
  EXPECT_NEAR(temporal_integral(k, 100000), 1.0, 1e-6);
}

TEST(KernelNormalization, QuarticIntegratesToOne) {
  const QuarticKernel k;
  EXPECT_NEAR(spatial_integral(k, 800), 1.0, 1e-2);
  EXPECT_NEAR(temporal_integral(k, 100000), 1.0, 1e-6);
}

TEST(KernelNormalization, GaussianTruncatedIntegratesToOne) {
  const GaussianTruncatedKernel k;
  EXPECT_NEAR(spatial_integral(k, 800), 1.0, 1e-2);
  EXPECT_NEAR(temporal_integral(k, 100000), 1.0, 1e-4);
}

// The as-printed transcription is *not* normalized — this is exactly why it
// is not the library default (DESIGN.md §2).
TEST(KernelNormalization, AsPrintedDoesNotIntegrateToOne) {
  const AsPrintedKernel k;
  EXPECT_GT(std::abs(spatial_integral(k, 400) - 1.0), 0.1);
}

// ---- symmetry -------------------------------------------------------------

TEST(KernelSymmetry, StandardKernelsAreRadiallySymmetric) {
  const EpanechnikovKernel e;
  const QuarticKernel q;
  EXPECT_DOUBLE_EQ(e.spatial(0.3, 0.4), e.spatial(0.4, 0.3));
  EXPECT_DOUBLE_EQ(e.spatial(0.3, 0.4), e.spatial(-0.3, -0.4));
  EXPECT_DOUBLE_EQ(e.spatial(0.5, 0.0), e.spatial(0.0, 0.5));
  EXPECT_DOUBLE_EQ(q.spatial(0.3, -0.4), q.spatial(0.3, 0.4));
}

TEST(KernelSymmetry, TemporalIsEvenForStandardKernels) {
  const EpanechnikovKernel e;
  EXPECT_DOUBLE_EQ(e.temporal(0.7), e.temporal(-0.7));
}

TEST(KernelSymmetry, AsPrintedIsIntentionallyAsymmetric) {
  const AsPrintedKernel k;
  EXPECT_NE(k.temporal(0.5), k.temporal(-0.5));
}

// ---- monotone decay -------------------------------------------------------

TEST(KernelDecay, DensityDecaysWithDistance) {
  const EpanechnikovKernel k;
  double prev = k.spatial(0.0, 0.0);
  for (double r = 0.1; r < 1.0; r += 0.1) {
    const double cur = k.spatial(r, 0.0);
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

// ---- variant --------------------------------------------------------------

TEST(KernelVariantApi, UnknownNameThrows) {
  EXPECT_THROW((void)kernel_by_name("nope"), std::invalid_argument);
}

TEST(KernelVariantApi, DefaultVariantIsEpanechnikov) {
  const KernelVariant v{};
  EXPECT_EQ(kernel_name(v), "epanechnikov");
}

}  // namespace
}  // namespace stkde::kernels
