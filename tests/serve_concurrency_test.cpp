/// Serve-layer concurrency contract: N reader sessions issuing queries
/// against a registry fed by a live sharded writer must observe
///  (1) immutability — the grid bytes behind a pinned version never change,
///      no matter how much the writer publishes afterwards;
///  (2) monotone versions — registry heads and per-session pins only move
///      forward;
///  (3) bounded staleness — begin_request() never serves a version more
///      than SessionConfig::max_staleness behind the head observed before
///      the call;
///  (4) request consistency — every response within one request carries the
///      same version (the straddle bug density_at() used to exhibit).
///
/// This test runs under TSan in CI (serve_concurrency is in the tsan job's
/// ctest regex), so it is also the data-race detector for the whole
/// registry/session/wire stack.

#include "serve/snapshot_registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "core/incremental.hpp"
#include "helpers.hpp"
#include "serve/service.hpp"
#include "serve/session.hpp"
#include "serve/wire.hpp"

namespace stkde::serve {
namespace {

using stkde::core::IncrementalEstimator;
using stkde::core::StreamConfig;
using stkde::testing::make_tiny;

/// Time-sorted clustered stream for a sliding-window writer.
PointSet sorted_stream(std::size_t n, std::uint64_t seed) {
  auto t = make_tiny(n, 3, 2, seed);
  std::sort(t.points.begin(), t.points.end(),
            [](const Point& a, const Point& b) { return a.t < b.t; });
  return t.points;
}

TEST(ServeConcurrency, PinnedSnapshotBytesNeverChange) {
  const auto t = make_tiny(1, 3, 2);
  StreamConfig cfg;
  cfg.threads = 2;
  IncrementalEstimator inc(t.domain, t.params, cfg);
  SnapshotRegistry reg(inc);

  PointSet stream = sorted_stream(600, 7);
  const std::size_t half = stream.size() / 2;
  for (std::size_t i = 0; i < half; i += 50)
    inc.add(PointSet(stream.begin() + static_cast<std::ptrdiff_t>(i),
                     stream.begin() + static_cast<std::ptrdiff_t>(
                                          std::min(i + 50, half))));

  const Snapshot pinned = reg.pin();
  ASSERT_TRUE(pinned.valid());
  const std::uint64_t v = pinned.version;
  const std::size_t n = pinned.n;
  std::vector<float> bytes(pinned.raw->data(),
                           pinned.raw->data() + pinned.raw->size());

  // Keep writing: plain adds, window slides (buffer churn through the
  // estimator's pool), and a checkpoint (full rebuild).
  double cutoff = 2.0;
  for (std::size_t i = half; i < stream.size(); i += 50) {
    PointSet batch(stream.begin() + static_cast<std::ptrdiff_t>(i),
                   stream.begin() + static_cast<std::ptrdiff_t>(
                                        std::min(i + 50, stream.size())));
    inc.advance_window(batch, cutoff);
    cutoff += 0.5;
  }
  inc.checkpoint();
  ASSERT_GT(reg.head_version(), v);

  EXPECT_EQ(pinned.version, v);
  EXPECT_EQ(pinned.n, n);
  EXPECT_EQ(pinned.raw->size(), bytes.size());
  EXPECT_EQ(std::memcmp(pinned.raw->data(), bytes.data(),
                        bytes.size() * sizeof(float)),
            0);
}

TEST(ServeConcurrency, HeadIsMonotoneAndRejectsStaleVersions) {
  const auto t = make_tiny(1, 2, 1);
  SnapshotRegistry reg(t.domain);
  EXPECT_EQ(reg.head_version(), 0u);
  EXPECT_FALSE(reg.pin().valid());

  auto make = [&](std::uint64_t version) {
    auto g = std::make_shared<DensityGrid>(t.domain.dims());
    g->fill(static_cast<float>(version));
    return Snapshot{std::move(g), 1, version};
  };
  reg.publish(make(5));
  EXPECT_EQ(reg.head_version(), 5u);
  reg.publish(make(3));  // replay/reorder: dropped
  reg.publish(make(5));  // duplicate: dropped
  EXPECT_EQ(reg.head_version(), 5u);
  EXPECT_EQ(reg.pin().raw->at(0, 0, 0), 5.0f);
  reg.publish(make(6));
  EXPECT_EQ(reg.head_version(), 6u);
  EXPECT_EQ(reg.stats().published, 2u);
  EXPECT_EQ(reg.stats().rejected, 2u);
}

TEST(ServeConcurrency, WaitForVersionObservesTheWriter) {
  const auto t = make_tiny(1, 2, 1);
  SnapshotRegistry reg(t.domain);
  std::thread writer([&] {
    for (std::uint64_t v = 1; v <= 4; ++v) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      auto g = std::make_shared<DensityGrid>(t.domain.dims());
      g->fill(0.0f);
      reg.publish(Snapshot{std::move(g), 1, v});
    }
  });
  EXPECT_TRUE(reg.wait_for_version(4, std::chrono::milliseconds(5000)));
  EXPECT_GE(reg.head_version(), 4u);
  EXPECT_FALSE(reg.wait_for_version(100, std::chrono::milliseconds(20)));
  writer.join();
}

TEST(ServeConcurrency, ReaderSessionsAgainstLiveShardedWriter) {
  const auto t = make_tiny(1, 3, 2);
  StreamConfig cfg;
  cfg.threads = 3;
  cfg.tiles = DecompRequest{4, 4, 1};
  cfg.replicate_threshold = 16;
  IncrementalEstimator inc(t.domain, t.params, cfg);
  SnapshotRegistry reg(inc);

  constexpr int kReaders = 4;
  std::atomic<bool> stop{false};
  std::atomic<int> monotone_violations{0};
  std::atomic<int> staleness_violations{0};
  std::atomic<int> consistency_violations{0};
  std::atomic<int> decode_failures{0};

  // Readers 0/1 demand freshness (max_staleness = 0); readers 2/3 accept a
  // 3-version-stale pin, so both re-pin policies run under contention.
  auto reader = [&](int id) {
    SessionConfig scfg;
    scfg.max_staleness = id < 2 ? 0 : 3;
    Session session(reg, scfg);
    std::uint64_t last = 0;
    const Extent3 box{2, 14, 2, 12, 1, 9};
    while (!stop.load(std::memory_order_acquire)) {
      const std::uint64_t head_before = reg.head_version();
      const BeginResult begin = session.begin_request();
      const std::uint64_t v = begin.version;
      if (v < last) monotone_violations.fetch_add(1);
      last = v;
      if (v + scfg.max_staleness < head_before)
        staleness_violations.fetch_add(1);
      if (reg.head_version() < v) monotone_violations.fetch_add(1);

      // One request, three queries through the wire: all three responses
      // must report the same version.
      const wire::Frame q1 =
          wire::encode(wire::QueryMessage{wire::DensityAtQuery{
              Point{12.0, 10.0, 8.0}}});
      const wire::Frame q2 = wire::encode(wire::QueryMessage{
          wire::RegionQuery{box, wire::RegionOp::kSum}});
      const wire::Frame q3 =
          wire::encode(wire::QueryMessage{wire::HotspotsQuery{2, 0.95}});
      for (const wire::Frame* q : {&q1, &q2, &q3}) {
        const wire::Frame resp = serve_frame(session, q->data(), q->size());
        const auto msg = wire::decode_response(resp.data(), resp.size());
        if (!msg) {
          decode_failures.fetch_add(1);
          continue;
        }
        // Before the first publish the request is kNoData and every data
        // query must answer a typed kUnavailable error — that error frame
        // is this phase's "consistent" response. Once the request holds a
        // version, responses must all carry it and never be errors.
        if (const auto* err = std::get_if<wire::ErrorResponse>(&*msg)) {
          const bool expected_unavailable =
              !begin.ok() && err->code == wire::ErrorCode::kUnavailable;
          if (!expected_unavailable) consistency_violations.fetch_add(1);
          continue;
        }
        if (!begin.ok()) {
          // A data answer from a request that held no version at all.
          consistency_violations.fetch_add(1);
          continue;
        }
        const std::uint64_t resp_version = std::visit(
            [](const auto& m) -> std::uint64_t {
              using T = std::decay_t<decltype(m)>;
              if constexpr (std::is_same_v<T, wire::ErrorResponse>)
                return ~std::uint64_t{0};
              else
                return m.version;
            },
            *msg);
        if (resp_version != v) consistency_violations.fetch_add(1);
      }
    }
  };
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) readers.emplace_back(reader, r);

  PointSet stream = sorted_stream(3000, 11);
  constexpr std::size_t kBatch = 48;
  double cutoff = 1.0;
  for (std::size_t i = 0; i < stream.size(); i += kBatch) {
    PointSet batch(stream.begin() + static_cast<std::ptrdiff_t>(i),
                   stream.begin() + static_cast<std::ptrdiff_t>(
                                        std::min(i + kBatch, stream.size())));
    inc.advance_window(batch, cutoff);
    cutoff += 0.2;
  }
  inc.checkpoint();
  stop.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();

  EXPECT_EQ(monotone_violations.load(), 0);
  EXPECT_EQ(staleness_violations.load(), 0);
  EXPECT_EQ(consistency_violations.load(), 0);
  EXPECT_EQ(decode_failures.load(), 0);
  // Every estimator publish reached the registry (hook wiring), none were
  // reordered.
  EXPECT_EQ(reg.stats().published, inc.stats().publishes);
  EXPECT_EQ(reg.stats().rejected, 0u);
  EXPECT_GT(reg.stats().published, 0u);
}

}  // namespace
}  // namespace stkde::serve
