#include "sched/stencil_graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace stkde::sched {
namespace {

TEST(StencilGraph, VertexCount) {
  EXPECT_EQ(StencilGraph(3, 4, 5).vertex_count(), 60);
  EXPECT_EQ(StencilGraph(1, 1, 1).vertex_count(), 1);
}

TEST(StencilGraph, InteriorVertexHas26Neighbors) {
  const StencilGraph g(3, 3, 3);
  EXPECT_EQ(g.degree(g.flat(1, 1, 1)), 26);
}

TEST(StencilGraph, CornerVertexHas7Neighbors) {
  const StencilGraph g(3, 3, 3);
  EXPECT_EQ(g.degree(g.flat(0, 0, 0)), 7);
  EXPECT_EQ(g.degree(g.flat(2, 2, 2)), 7);
}

TEST(StencilGraph, EdgeVertexDegrees) {
  const StencilGraph g(3, 3, 3);
  EXPECT_EQ(g.degree(g.flat(1, 0, 0)), 11);   // edge of the cube
  EXPECT_EQ(g.degree(g.flat(1, 1, 0)), 17);   // face center
}

TEST(StencilGraph, SingletonHasNoNeighbors) {
  const StencilGraph g(1, 1, 1);
  EXPECT_EQ(g.degree(0), 0);
}

TEST(StencilGraph, DegenerateAxesReduceDimension) {
  // A 1 x 5 x 1 lattice is a path graph: interior degree 2.
  const StencilGraph g(1, 5, 1);
  EXPECT_EQ(g.degree(g.flat(0, 2, 0)), 2);
  EXPECT_EQ(g.degree(g.flat(0, 0, 0)), 1);
}

TEST(StencilGraph, NeighborsAreSymmetric) {
  const StencilGraph g(3, 2, 4);
  for (std::int64_t v = 0; v < g.vertex_count(); ++v) {
    for (const std::int64_t u : g.neighbors(v)) {
      const auto back = g.neighbors(u);
      EXPECT_NE(std::find(back.begin(), back.end(), v), back.end())
          << u << " -> " << v;
    }
  }
}

TEST(StencilGraph, NeighborsDifferByAtMostOnePerAxis) {
  const StencilGraph g(4, 4, 4);
  for (std::int64_t v = 0; v < g.vertex_count(); ++v) {
    std::int32_t va, vb, vc;
    g.coords(v, va, vb, vc);
    for (const std::int64_t u : g.neighbors(v)) {
      std::int32_t ua, ub, uc;
      g.coords(u, ua, ub, uc);
      EXPECT_LE(std::abs(ua - va), 1);
      EXPECT_LE(std::abs(ub - vb), 1);
      EXPECT_LE(std::abs(uc - vc), 1);
      EXPECT_NE(u, v);
    }
  }
}

TEST(StencilGraph, NoDuplicateNeighbors) {
  const StencilGraph g(3, 3, 2);
  for (std::int64_t v = 0; v < g.vertex_count(); ++v) {
    const auto nb = g.neighbors(v);
    const std::set<std::int64_t> uniq(nb.begin(), nb.end());
    EXPECT_EQ(uniq.size(), nb.size());
  }
}

TEST(StencilGraph, FlatCoordsRoundTrip) {
  const StencilGraph g(5, 3, 7);
  for (std::int64_t v = 0; v < g.vertex_count(); ++v) {
    std::int32_t a, b, c;
    g.coords(v, a, b, c);
    EXPECT_EQ(g.flat(a, b, c), v);
  }
}

TEST(StencilGraph, OfDecompositionMatchesShape) {
  const Decomposition dec =
      Decomposition::uniform(GridDims{64, 64, 64}, DecompRequest{4, 5, 6});
  const StencilGraph g = StencilGraph::of(dec);
  EXPECT_EQ(g.a(), 4);
  EXPECT_EQ(g.b(), 5);
  EXPECT_EQ(g.c(), 6);
  EXPECT_EQ(g.vertex_count(), dec.count());
}

}  // namespace
}  // namespace stkde::sched
