#include "kernels/bandwidth.hpp"

#include <gtest/gtest.h>

#include "data/generator.hpp"

namespace stkde::kernels {
namespace {

TEST(Silverman, ScalesWithSpread) {
  const DomainSpec tight{0, 0, 0, 10, 10, 10, 1, 1};
  const DomainSpec wide{0, 0, 0, 1000, 1000, 1000, 1, 1};
  const auto ht_bw = silverman_bandwidth(data::generate_uniform(tight, 500, 3));
  const auto wd_bw = silverman_bandwidth(data::generate_uniform(wide, 500, 3));
  EXPECT_GT(wd_bw.hs, 10.0 * ht_bw.hs);
  EXPECT_GT(wd_bw.ht, 10.0 * ht_bw.ht);
}

TEST(Silverman, ShrinksWithSampleSize) {
  const DomainSpec dom{0, 0, 0, 100, 100, 100, 1, 1};
  const auto small = silverman_bandwidth(data::generate_uniform(dom, 100, 5));
  const auto large = silverman_bandwidth(data::generate_uniform(dom, 10000, 5));
  EXPECT_LT(large.hs, small.hs);
}

TEST(Silverman, DegenerateInputsGiveDefaults) {
  EXPECT_DOUBLE_EQ(silverman_bandwidth({}).hs, 1.0);
  EXPECT_DOUBLE_EQ(silverman_bandwidth({{1, 2, 3}}).hs, 1.0);
  // All identical points: zero variance -> fallback.
  const PointSet same(50, Point{3, 3, 3});
  EXPECT_DOUBLE_EQ(silverman_bandwidth(same).hs, 1.0);
  EXPECT_DOUBLE_EQ(silverman_bandwidth(same).ht, 1.0);
}

TEST(Adaptive, DenseRegionsGetSmallerBandwidths) {
  // A tight cluster plus far-flung isolated points.
  PointSet pts;
  for (int i = 0; i < 50; ++i)
    pts.push_back(Point{10.0 + 0.01 * i, 10.0, 0.0});
  pts.push_back(Point{500.0, 500.0, 0.0});
  const auto h = knn_adaptive_bandwidths(pts, 3);
  ASSERT_EQ(h.size(), pts.size());
  // Cluster members see neighbors within fractions of a unit; the outlier's
  // 3rd neighbor is hundreds of units away.
  EXPECT_LT(h[25], 1.0);
  EXPECT_GT(h.back(), 100.0);
}

TEST(Adaptive, ClampBoundsRespected) {
  PointSet pts;
  for (int i = 0; i < 20; ++i)
    pts.push_back(Point{static_cast<double>(100 * i), 0.0, 0.0});
  AdaptiveClamp clamp;
  clamp.min_hs = 5.0;
  clamp.max_hs = 50.0;
  const auto h = knn_adaptive_bandwidths(pts, 1, clamp);
  for (const double v : h) {
    EXPECT_GE(v, 5.0);
    EXPECT_LE(v, 50.0);
  }
}

TEST(Adaptive, LargerKWidensBandwidths) {
  const DomainSpec dom{0, 0, 0, 100, 100, 100, 1, 1};
  const PointSet pts = data::generate_uniform(dom, 300, 7);
  const auto h1 = knn_adaptive_bandwidths(pts, 1);
  const auto h10 = knn_adaptive_bandwidths(pts, 10);
  for (std::size_t i = 0; i < pts.size(); ++i) EXPECT_GE(h10[i], h1[i]);
}

TEST(Adaptive, DuplicatesGetMinClamp) {
  const PointSet pts(10, Point{1, 1, 0});
  AdaptiveClamp clamp;
  clamp.min_hs = 0.5;
  const auto h = knn_adaptive_bandwidths(pts, 3, clamp);
  for (const double v : h) EXPECT_DOUBLE_EQ(v, 0.5);
}

}  // namespace
}  // namespace stkde::kernels
