#include "sched/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>

namespace stkde::sched {
namespace {

TEST(ThreadPool, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, MinimumOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1);
  std::atomic<bool> ran{false};
  pool.submit([&] { ran = true; });
  pool.wait_idle();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, WaitIdleCanBeCalledRepeatedly) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&] { ++count; });
  pool.wait_idle();
  pool.submit([&] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The pool remains usable afterwards.
  std::atomic<bool> ran{false};
  pool.submit([&] { ran = true; });
  pool.wait_idle();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, TasksRunOnWorkerThreads) {
  ThreadPool pool(3);
  std::mutex mu;
  std::set<std::thread::id> ids;
  for (int i = 0; i < 64; ++i)
    pool.submit([&] {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      std::lock_guard lk(mu);
      ids.insert(std::this_thread::get_id());
    });
  pool.wait_idle();
  EXPECT_GE(ids.size(), 1u);
  EXPECT_LE(ids.size(), 3u);
  EXPECT_EQ(ids.count(std::this_thread::get_id()), 0u);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.submit([&] { ++count; });
    // No wait_idle: destructor must still run everything.
  }
  EXPECT_EQ(count.load(), 50);
}

}  // namespace
}  // namespace stkde::sched
