#include "sched/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

namespace stkde::sched {
namespace {

/// Holds the pool's one worker on a gate so tests can stack the queues
/// deterministically before any dequeue happens.
class WorkerGate {
 public:
  explicit WorkerGate(ThreadPool& pool) {
    pool.submit([this] {
      std::unique_lock<std::mutex> lk(mu_);
      started_ = true;
      cv_.notify_all();
      while (!open_) cv_.wait(lk);
    });
    std::unique_lock<std::mutex> lk(mu_);
    while (!started_) cv_.wait(lk);
  }

  void open() {
    std::lock_guard<std::mutex> lk(mu_);
    open_ = true;
    cv_.notify_all();
  }

  ~WorkerGate() { open(); }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool started_ = false;
  bool open_ = false;
};

TEST(ThreadPool, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, MinimumOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1);
  std::atomic<bool> ran{false};
  pool.submit([&] { ran = true; });
  pool.wait_idle();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, WaitIdleCanBeCalledRepeatedly) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&] { ++count; });
  pool.wait_idle();
  pool.submit([&] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The pool remains usable afterwards.
  std::atomic<bool> ran{false};
  pool.submit([&] { ran = true; });
  pool.wait_idle();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, TasksRunOnWorkerThreads) {
  ThreadPool pool(3);
  std::mutex mu;
  std::set<std::thread::id> ids;
  for (int i = 0; i < 64; ++i)
    pool.submit([&] {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      std::lock_guard lk(mu);
      ids.insert(std::this_thread::get_id());
    });
  pool.wait_idle();
  EXPECT_GE(ids.size(), 1u);
  EXPECT_LE(ids.size(), 3u);
  EXPECT_EQ(ids.count(std::this_thread::get_id()), 0u);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.submit([&] { ++count; });
    // No wait_idle: destructor must still run everything.
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, StrictPriorityOrderAtDequeue) {
  ThreadPool pool(1);
  WorkerGate gate(pool);  // queue everything before the worker frees up
  std::mutex mu;
  std::vector<int> order;
  const auto record = [&](int v) {
    return [&mu, &order, v] {
      std::lock_guard<std::mutex> lk(mu);
      order.push_back(v);
    };
  };
  pool.submit(record(30), Priority::kLow);
  pool.submit(record(10), Priority::kHigh);
  pool.submit(record(20));  // plain submit is kNormal
  pool.submit(record(31), Priority::kLow);
  pool.submit(record(11), Priority::kHigh);
  gate.open();
  pool.wait_idle();
  // Strict levels, FIFO within a level.
  EXPECT_EQ(order, (std::vector<int>{10, 11, 20, 30, 31}));
}

TEST(ThreadPool, CancelledTasksAreSkippedAtDequeue) {
  ThreadPool pool(1);
  WorkerGate gate(pool);
  auto flag = std::make_shared<std::atomic<bool>>(false);
  std::atomic<int> ran{0};
  pool.submit([&] { ++ran; }, Priority::kNormal, flag);
  pool.submit([&] { ++ran; }, Priority::kNormal, flag);
  pool.submit([&] { ++ran; }, Priority::kNormal);  // no token: must run
  // One store cancels every queued task tagged with the flag — none of
  // them ever starts.
  flag->store(true);
  gate.open();
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 1);
  EXPECT_EQ(pool.cancelled(), 2u);
}

TEST(ThreadPool, CancellingEverythingStillReachesIdle) {
  // The idle invariant survives an all-cancelled queue: wait_idle must
  // return even though no task body ever runs after the gate opens.
  ThreadPool pool(1);
  WorkerGate gate(pool);
  auto flag = std::make_shared<std::atomic<bool>>(true);  // born cancelled
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i)
    pool.submit([&] { ++ran; }, Priority::kLow, flag);
  gate.open();
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 0);
  EXPECT_EQ(pool.cancelled(), 8u);
  // The pool is fully usable afterwards.
  pool.submit([&] { ++ran; });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, CancelTokenDoesNotAffectRunningTasks) {
  ThreadPool pool(2);
  auto flag = std::make_shared<std::atomic<bool>>(false);
  std::mutex mu;
  std::condition_variable cv;
  bool entered = false;
  bool release = false;
  pool.submit(
      [&] {
        std::unique_lock<std::mutex> lk(mu);
        entered = true;
        cv.notify_all();
        while (!release) cv.wait(lk);
      },
      Priority::kNormal, flag);
  {
    std::unique_lock<std::mutex> lk(mu);
    while (!entered) cv.wait(lk);
  }
  // Cancelling after dequeue is a no-op: the task finishes normally.
  flag->store(true);
  {
    std::lock_guard<std::mutex> lk(mu);
    release = true;
    cv.notify_all();
  }
  pool.wait_idle();
  EXPECT_EQ(pool.cancelled(), 0u);
}

}  // namespace
}  // namespace stkde::sched
