#include "data/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "data/generator.hpp"

namespace stkde::data {
namespace {

TEST(Csv, ParsesPlainRows) {
  std::istringstream in("1.5,2.5,3.5\n-1,0,42\n");
  const PointSet pts = read_csv(in);
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_EQ(pts[0], (Point{1.5, 2.5, 3.5}));
  EXPECT_EQ(pts[1], (Point{-1, 0, 42}));
}

TEST(Csv, SkipsHeaderRow) {
  std::istringstream in("x,y,t\n1,2,3\n");
  const PointSet pts = read_csv(in);
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_EQ(pts[0], (Point{1, 2, 3}));
}

TEST(Csv, SkipsCommentsAndBlankLines) {
  std::istringstream in("# comment\n\n1,2,3\n\n# another\n4,5,6\n");
  EXPECT_EQ(read_csv(in).size(), 2u);
}

TEST(Csv, HandlesCrLf) {
  std::istringstream in("1,2,3\r\n4,5,6\r\n");
  const PointSet pts = read_csv(in);
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_EQ(pts[1], (Point{4, 5, 6}));
}

TEST(Csv, MalformedMidFileRowThrowsWithLineNumber) {
  std::istringstream in("1,2,3\nnot,a,number\n");
  try {
    (void)read_csv(in);
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Csv, MissingColumnThrows) {
  std::istringstream in("1,2,3\n4,5\n");
  EXPECT_THROW(read_csv(in), std::runtime_error);
}

TEST(Csv, ScientificNotationAccepted) {
  std::istringstream in("1e3,-2.5e-2,3E1\n");
  const PointSet pts = read_csv(in);
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_DOUBLE_EQ(pts[0].x, 1000.0);
  EXPECT_DOUBLE_EQ(pts[0].y, -0.025);
  EXPECT_DOUBLE_EQ(pts[0].t, 30.0);
}

TEST(Csv, EmptyInputGivesEmptySet) {
  std::istringstream in("");
  EXPECT_TRUE(read_csv(in).empty());
}

TEST(Csv, WriteReadRoundTripsExactly) {
  const DomainSpec d{0, 0, 0, 100, 100, 100, 1, 1};
  const PointSet original = generate_uniform(d, 500, 77);
  std::stringstream ss;
  write_csv(ss, original);
  const PointSet loaded = read_csv(ss);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < loaded.size(); ++i)
    EXPECT_EQ(loaded[i], original[i]) << i;  // precision 17 is lossless
}

TEST(Csv, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/stkde_csv_test.csv";
  const PointSet original = {{1, 2, 3}, {4.5, 5.5, 6.5}};
  write_csv_file(path, original);
  const PointSet loaded = read_csv_file(path);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[1], original[1]);
  std::remove(path.c_str());
}

TEST(Csv, MissingFileThrows) {
  EXPECT_THROW(read_csv_file("/nonexistent/path/pts.csv"), std::runtime_error);
}

}  // namespace
}  // namespace stkde::data
