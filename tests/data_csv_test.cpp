#include "data/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "data/generator.hpp"

namespace stkde::data {
namespace {

TEST(Csv, ParsesPlainRows) {
  std::istringstream in("1.5,2.5,3.5\n-1,0,42\n");
  const PointSet pts = read_csv(in);
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_EQ(pts[0], (Point{1.5, 2.5, 3.5}));
  EXPECT_EQ(pts[1], (Point{-1, 0, 42}));
}

TEST(Csv, SkipsHeaderRow) {
  std::istringstream in("x,y,t\n1,2,3\n");
  const PointSet pts = read_csv(in);
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_EQ(pts[0], (Point{1, 2, 3}));
}

TEST(Csv, SkipsCommentsAndBlankLines) {
  std::istringstream in("# comment\n\n1,2,3\n\n# another\n4,5,6\n");
  EXPECT_EQ(read_csv(in).size(), 2u);
}

TEST(Csv, HandlesCrLf) {
  std::istringstream in("1,2,3\r\n4,5,6\r\n");
  const PointSet pts = read_csv(in);
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_EQ(pts[1], (Point{4, 5, 6}));
}

TEST(Csv, MalformedMidFileRowThrowsWithLineNumber) {
  std::istringstream in("1,2,3\nnot,a,number\n");
  try {
    (void)read_csv(in);
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Csv, MissingColumnThrows) {
  std::istringstream in("1,2,3\n4,5\n");
  EXPECT_THROW(read_csv(in), std::runtime_error);
}

TEST(Csv, ScientificNotationAccepted) {
  std::istringstream in("1e3,-2.5e-2,3E1\n");
  const PointSet pts = read_csv(in);
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_DOUBLE_EQ(pts[0].x, 1000.0);
  EXPECT_DOUBLE_EQ(pts[0].y, -0.025);
  EXPECT_DOUBLE_EQ(pts[0].t, 30.0);
}

TEST(Csv, EmptyInputGivesEmptySet) {
  std::istringstream in("");
  EXPECT_TRUE(read_csv(in).empty());
}

TEST(Csv, WriteReadRoundTripsExactly) {
  const DomainSpec d{0, 0, 0, 100, 100, 100, 1, 1};
  const PointSet original = generate_uniform(d, 500, 77);
  std::stringstream ss;
  write_csv(ss, original);
  const PointSet loaded = read_csv(ss);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < loaded.size(); ++i)
    EXPECT_EQ(loaded[i], original[i]) << i;  // precision 17 is lossless
}

TEST(Csv, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/stkde_csv_test.csv";
  const PointSet original = {{1, 2, 3}, {4.5, 5.5, 6.5}};
  write_csv_file(path, original);
  const PointSet loaded = read_csv_file(path);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[1], original[1]);
  std::remove(path.c_str());
}

TEST(Csv, MissingFileThrows) {
  EXPECT_THROW(read_csv_file("/nonexistent/path/pts.csv"), std::runtime_error);
}

// std::stod happily parses "nan" and "inf" — a NaN point would poison every
// kernel sum downstream, so the reader must treat non-finite rows as
// malformed, with the line number in the error.
TEST(Csv, NonFiniteRowsThrowWithLineNumber) {
  for (const char* bad : {"1,nan,3", "inf,2,3", "1,2,-inf", "1,NaN,3"}) {
    std::istringstream in(std::string("0,0,0\n") + bad + "\n");
    try {
      (void)read_csv(in);
      FAIL() << "expected exception for row: " << bad;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
          << e.what();
      EXPECT_NE(std::string(e.what()).find("non-finite"), std::string::npos)
          << e.what();
    }
  }
}

// A parsable-but-non-finite FIRST row is data (and bad), not a header: the
// header heuristic only forgives rows whose cells are not numbers at all.
TEST(Csv, NonFiniteFirstRowIsNotAHeader) {
  std::istringstream in("nan,nan,nan\n1,2,3\n");
  EXPECT_THROW((void)read_csv(in), std::runtime_error);
}

// Skip-and-count mode: a corrupted dengue-style extract (geocoded
// lon/lat/day rows with truncated lines, stray text, and NaN cells mixed
// in) loads every clean row and reports exactly what was dropped.
TEST(Csv, SkipModeLoadsCorruptedDengueSample) {
  std::stringstream feed;
  feed.precision(17);  // lossless, as write_csv emits
  feed << "lon,lat,day\n";  // header survives the heuristic
  const DomainSpec cali{0, 0, 0, 3'000.0, 2'500.0, 60.0, 50.0, 1.0};
  const PointSet clean = generate_uniform(cali, 200, 2024);
  std::size_t emitted = 0, corrupted = 0;
  for (const Point& p : clean) {
    if (emitted % 17 == 5) {  // truncated row (interrupted write)
      feed << p.x << ',' << p.y << '\n';
      ++corrupted;
    } else if (emitted % 17 == 11) {  // upstream join failure
      feed << p.x << ",nan," << p.t << '\n';
      ++corrupted;
    } else if (emitted % 17 == 13) {  // stray text in a numeric column
      feed << p.x << ",BORRADO," << p.t << '\n';
      ++corrupted;
    } else {
      feed << p.x << ',' << p.y << ',' << p.t << '\n';
    }
    ++emitted;
  }
  ASSERT_GT(corrupted, 0u);

  CsvReport rep;
  const PointSet loaded = read_csv(feed, CsvOptions{true}, &rep);
  EXPECT_EQ(loaded.size(), clean.size() - corrupted);
  EXPECT_EQ(rep.rows, loaded.size());
  EXPECT_EQ(rep.skipped, corrupted);
  EXPECT_GT(rep.first_bad_line, 1u);  // never the header line
  EXPECT_FALSE(rep.first_bad_reason.empty());
  // Every loaded row is one of the clean ones, in order.
  std::size_t j = 0;
  for (const Point& p : loaded) {
    while (j < clean.size() && !(clean[j] == p)) ++j;
    ASSERT_LT(j, clean.size());
    ++j;
  }

  // The same sample in strict mode aborts on the first corrupt row.
  std::stringstream again(feed.str());
  EXPECT_THROW((void)read_csv(again), std::runtime_error);
}

// Skip mode still reports a clean file as clean.
TEST(Csv, SkipModeCleanFileReportsZeroSkips) {
  std::istringstream in("x,y,t\n1,2,3\n4,5,6\n");
  CsvReport rep;
  const PointSet pts = read_csv(in, CsvOptions{true}, &rep);
  EXPECT_EQ(pts.size(), 2u);
  EXPECT_EQ(rep.rows, 2u);
  EXPECT_EQ(rep.skipped, 0u);
  EXPECT_EQ(rep.first_bad_line, 0u);
}

}  // namespace
}  // namespace stkde::data
