/// End-to-end serve scenarios: the epidemic_dengue and bird_flu_surveillance
/// examples graduated into deterministic regression tests. Each scenario
/// streams a generated dataset through a sharded IncrementalEstimator with a
/// sliding window, then answers every serve endpoint — density_at, region
/// sum/max, slice, hotspots, region_grid over the wire — from a pinned
/// snapshot, and checks each answer against a serial batch estimator run
/// over exactly the live window.
///
/// Domains are scaled-down versions of the examples' (same shape, fewer
/// voxels) so both scenarios run in seconds; everything is seeded, so the
/// expected values are bit-stable across runs.

#include "serve/session.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <variant>
#include <vector>

#include "core/estimator.hpp"
#include "core/incremental.hpp"
#include "data/datasets.hpp"
#include "helpers.hpp"
#include "io/slice.hpp"
#include "serve/service.hpp"
#include "serve/snapshot_registry.hpp"
#include "serve/wire.hpp"

namespace stkde::serve {
namespace {

using stkde::core::IncrementalEstimator;
using stkde::core::StreamConfig;

/// Serial-reference sum of normalized density over a region.
double ref_region_sum(const DensityGrid& g, const Extent3& region) {
  const Extent3 r = region.intersect(g.extent());
  double sum = 0.0;
  for (std::int32_t X = r.xlo; X < r.xhi; ++X)
    for (std::int32_t Y = r.ylo; Y < r.yhi; ++Y)
      for (std::int32_t T = r.tlo; T < r.thi; ++T)
        sum += static_cast<double>(g.at(X, Y, T));
  return sum;
}

/// Argmax voxel of a grid (ties: first in XYT order).
Voxel ref_argmax(const DensityGrid& g) {
  Voxel best{};
  float bestv = -1.0f;
  const Extent3& e = g.extent();
  for (std::int32_t X = e.xlo; X < e.xhi; ++X)
    for (std::int32_t Y = e.ylo; Y < e.yhi; ++Y)
      for (std::int32_t T = e.tlo; T < e.thi; ++T)
        if (g.at(X, Y, T) > bestv) {
          bestv = g.at(X, Y, T);
          best = Voxel{X, Y, T};
        }
  return best;
}

struct Scenario {
  DomainSpec domain;
  Params params;
  PointSet stream;        ///< time-sorted event feed
  double window;          ///< sliding-window length (time units)
  double batch_span;      ///< feed granularity (time units per batch)
};

/// Stream the feed through a sharded writer, then compare every serve
/// endpoint against a serial batch estimate over the live window.
void run_scenario(Scenario sc, const Extent3& probe_box) {
  std::sort(sc.stream.begin(), sc.stream.end(),
            [](const Point& a, const Point& b) { return a.t < b.t; });

  StreamConfig cfg;
  cfg.threads = 2;
  cfg.tiles = DecompRequest{4, 4, 1};
  IncrementalEstimator inc(sc.domain, sc.params, cfg);
  SnapshotRegistry reg(inc);

  // Ingest in batch_span-sized slabs; the window trails the feed.
  double cutoff = sc.stream.front().t;
  std::size_t i = 0;
  while (i < sc.stream.size()) {
    const double upto = sc.stream[i].t + sc.batch_span;
    std::size_t j = i;
    while (j < sc.stream.size() && sc.stream[j].t < upto) ++j;
    cutoff = upto - sc.window;
    inc.advance_window(
        PointSet(sc.stream.begin() + static_cast<std::ptrdiff_t>(i),
                 sc.stream.begin() + static_cast<std::ptrdiff_t>(j)),
        cutoff);
    i = j;
  }
  // A checkpoint rebuilds from the live set, bounding the +/- cancellation
  // drift a long stream accumulates; the serve layer then answers from the
  // republished state. (Pre-checkpoint agreement is covered at a looser
  // bound by incremental_test.)
  inc.checkpoint();

  // Serial reference over exactly the live window.
  PointSet live;
  for (const Point& p : sc.stream)
    if (p.t >= cutoff) live.push_back(p);
  ASSERT_FALSE(live.empty());
  ASSERT_EQ(inc.live_count(), live.size());
  Params serial = sc.params;
  serial.threads = 1;
  const Result ref = estimate(live, sc.domain, serial, Algorithm::kPBSym);
  const float peak = ref.grid.max_value();
  ASSERT_GT(peak, 0.0f);
  const double tol = 1e-5 * static_cast<double>(peak);

  Session session(reg, SessionConfig{});
  const BeginResult begin = session.begin_request();
  ASSERT_EQ(begin.state, SessionState::kFresh);
  ASSERT_GT(begin.version, 0u);

  // Whole-grid and sub-region aggregates.
  const Extent3 whole = ref.grid.extent();
  EXPECT_NEAR(session.region_sum(whole), ref_region_sum(ref.grid, whole),
              1e-5 * std::abs(ref_region_sum(ref.grid, whole)) + tol);
  EXPECT_NEAR(session.region_sum(probe_box),
              ref_region_sum(ref.grid, probe_box),
              1e-5 * std::abs(ref_region_sum(ref.grid, whole)) + tol);
  EXPECT_NEAR(session.region_max(whole), peak, tol);

  // Point probes: the reference peak voxel and a handful of others.
  const Voxel peak_voxel = ref_argmax(ref.grid);
  EXPECT_NEAR(session.density_at(peak_voxel), peak, tol);
  const VoxelMapper map(sc.domain);
  for (const Point& p :
       {sc.stream[sc.stream.size() / 2], live.front(), live.back()}) {
    if (!map.in_domain(p)) continue;
    const Voxel vox = map.voxel_of(p);
    EXPECT_NEAR(session.density_at(p), ref.grid.at(vox.x, vox.y, vox.t), tol);
  }

  // The hottest hotspot matches the reference peak (a near-tie-safe check:
  // the reported peak cell carries reference density within tol of max).
  const std::vector<Hotspot> hot = session.top_hotspots(3, 0.99);
  ASSERT_FALSE(hot.empty());
  EXPECT_NEAR(hot[0].peak_density, peak, tol);
  EXPECT_NEAR(ref.grid.at(hot[0].peak.x, hot[0].peak.y, hot[0].peak.t), peak,
              tol);
  EXPECT_GT(hot[0].mass, 0.0);
  EXPECT_GT(hot[0].voxels, 0);

  // Time slice through the reference peak.
  const io::Field2D plane = session.slice(peak_voxel.t);
  const io::Field2D ref_plane = io::time_slice(ref.grid, peak_voxel.t);
  ASSERT_EQ(plane.nx, ref_plane.nx);
  ASSERT_EQ(plane.ny, ref_plane.ny);
  for (std::size_t c = 0; c < plane.values.size(); ++c)
    ASSERT_NEAR(plane.values[c], ref_plane.values[c], tol) << "cell " << c;

  // Region grid over the wire: encode -> serve_frame -> decode, then cell
  // compare. This is the full query path a remote client exercises.
  const wire::Frame qf =
      wire::encode(wire::QueryMessage{wire::RegionGridQuery{probe_box}});
  const wire::Frame rf = serve_frame(session, qf.data(), qf.size());
  const auto resp = wire::decode_response(rf.data(), rf.size());
  ASSERT_TRUE(resp.has_value());
  const auto* gridresp = std::get_if<wire::RegionGridResponse>(&*resp);
  ASSERT_NE(gridresp, nullptr);
  EXPECT_EQ(gridresp->version, begin.version);
  const Extent3 r = probe_box.intersect(whole);
  ASSERT_EQ(gridresp->grid.extent(), r);
  for (std::int32_t X = r.xlo; X < r.xhi; ++X)
    for (std::int32_t Y = r.ylo; Y < r.yhi; ++Y)
      for (std::int32_t T = r.tlo; T < r.thi; ++T)
        ASSERT_NEAR(gridresp->grid.at(X, Y, T), ref.grid.at(X, Y, T), tol);
}

TEST(ServeScenario, EpidemicDengue) {
  // examples/epidemic_dengue.cpp's Cali-sized city, scaled down: 3 x 2.5 km
  // at 50 m cells over 60 days of daily slices (60 x 50 x 60 voxels), with
  // the example's "focused" bandwidth shape. A 14-day surveillance window
  // slides over the feed in daily batches.
  Scenario sc;
  sc.domain = DomainSpec{0, 0, 0, 3'000.0, 2'500.0, 60.0, 50.0, 1.0};
  sc.params.hs = 400.0;  // meters
  sc.params.ht = 7.0;    // days
  sc.stream =
      data::generate_dataset(data::Dataset::kDengue, sc.domain, 4000, 2010);
  sc.window = 14.0;
  sc.batch_span = 1.0;
  run_scenario(std::move(sc), Extent3{10, 40, 8, 35, 40, 58});
}

TEST(ServeScenario, BirdFluSurveillance) {
  // examples/bird_flu_surveillance.cpp's Alaska-to-Japan domain, scaled
  // down: 60 x 40 degrees at 1 degree cells, 90 days of 3-day slices
  // (60 x 40 x 30 voxels) — still the sparse, init-dominated regime. A
  // 45-day window slides in 9-day batches.
  Scenario sc;
  sc.domain = DomainSpec{-180.0, -60.0, 0.0, 60.0, 40.0, 90.0, 1.0, 3.0};
  sc.params.hs = 3.0;   // degrees
  sc.params.ht = 21.0;  // days
  sc.stream =
      data::generate_dataset(data::Dataset::kFlu, sc.domain, 1500, 2001);
  sc.window = 45.0;
  sc.batch_span = 9.0;
  run_scenario(std::move(sc), Extent3{5, 55, 5, 35, 10, 28});
}

}  // namespace
}  // namespace stkde::serve
