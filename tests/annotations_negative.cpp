// Negative-compile proof that Clang Thread Safety Analysis is live
// (docs/ANALYSIS.md): this file seeds the canonical violation — a
// STKDE_GUARDED_BY member touched without its mutex — and MUST FAIL to
// compile under `-Wthread-safety -Werror=thread-safety-analysis`.
//
// It is not a member of any build target. The annotations_negative_compile
// ctest entry (tests/CMakeLists.txt, gated on STKDE_THREAD_SAFETY) feeds it
// to the compiler with -fsyntax-only and inverts the result with WILL_FAIL:
// if the compiler *accepts* this file, the analysis has been silently
// disabled — macros expanding to nothing, flags dropped — and the test
// fails, which is the whole point.

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace stkde {

class Violator {
 public:
  // BUG (deliberate): writes a guarded member without holding mu_.
  void unlocked_write() { ++count_; }

 private:
  util::Mutex mu_;
  int count_ STKDE_GUARDED_BY(mu_) = 0;
};

inline void drive(Violator& v) { v.unlocked_write(); }

}  // namespace stkde
