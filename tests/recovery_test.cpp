/// Fault-tolerance battery (docs/ROBUSTNESS.md): WAL framing and torn-tail
/// repair, durable checkpoint/recovery round trips, ingest admission +
/// quarantine, serve-side graceful degradation, and — in failpoint builds —
/// the chaos matrix: crash the estimator at every registered site mid-run
/// and prove a fresh estimator recovers to within 1e-5 of an uninterrupted
/// reference. Labeled `chaos` in CTest; every non-failpoint test also runs
/// in default (STKDE_FAILPOINTS=OFF) builds.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/durability.hpp"
#include "core/incremental.hpp"
#include "helpers.hpp"
#include "io/checked_io.hpp"
#include "io/wal.hpp"
#include "serve/service.hpp"
#include "serve/session.hpp"
#include "serve/snapshot_registry.hpp"
#include "serve/wire.hpp"
#include "util/failpoint.hpp"

namespace stkde {
namespace {

namespace fp = util::failpoint;
namespace fs = std::filesystem;
namespace wire = serve::wire;

// TSan multiplies every run by ~10x; the chaos matrix feeds each stream
// dozens of times, so it scales its event count down there. The Release
// matrix keeps the acceptance-scale 100k+ event stream.
#if defined(__SANITIZE_THREAD__)
#define STKDE_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define STKDE_TSAN_BUILD 1
#endif
#endif

#ifdef STKDE_TSAN_BUILD
constexpr std::size_t kMatrixEventsSerial = 20'000;
constexpr std::size_t kMatrixEventsSharded = 10'000;
#else
constexpr std::size_t kMatrixEventsSerial = 100'000;
constexpr std::size_t kMatrixEventsSharded = 30'000;
#endif

/// A scratch durability directory, wiped of any prior incarnation's files.
std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "stkde_rec_" + name;
  fs::create_directories(dir);
  core::DurableLog::reset_dir(dir);
  return dir;
}

/// The one WAL file in \p dir (generation-agnostic lookup for tests that
/// corrupt the tail by hand).
std::string find_wal(const std::string& dir) {
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("wal.", 0) == 0) return entry.path().string();
  }
  ADD_FAILURE() << "no WAL file under " << dir;
  return {};
}

void append_bytes(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::app);
  ASSERT_TRUE(f.is_open()) << path;
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void flip_byte(const std::string& path, std::uint64_t offset) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f.is_open()) << path;
  f.seekg(static_cast<std::streamoff>(offset));
  char c = 0;
  f.read(&c, 1);
  c = static_cast<char>(c ^ 0x5A);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&c, 1);
}

// ---------------------------------------------------------------------------
// A deterministic sliding-window feed, expressed as a numbered op list so
// an at-least-once feeder can resume from any committed batch sequence:
// op k (0-based) commits batch_seq k+1.

struct Op {
  enum Kind : std::uint8_t { kAdd, kAdvance, kRemove } kind = kAdd;
  PointSet pts;
  double cutoff = 0.0;
};

std::vector<Op> make_ops(PointSet stream, std::size_t batch, double window) {
  std::sort(stream.begin(), stream.end(),
            [](const Point& a, const Point& b) { return a.t < b.t; });
  std::vector<Op> ops;
  for (std::size_t lo = 0; lo < stream.size(); lo += batch) {
    const std::size_t hi = std::min(stream.size(), lo + batch);
    PointSet chunk(stream.begin() + static_cast<std::ptrdiff_t>(lo),
                   stream.begin() + static_cast<std::ptrdiff_t>(hi));
    if (ops.empty()) {
      ops.push_back(Op{Op::kAdd, std::move(chunk), 0.0});
    } else {
      const double cut = chunk.back().t - window;
      ops.push_back(Op{Op::kAdvance, std::move(chunk), cut});
    }
  }
  // One mid-stream removal of still-live events, so the kRemove WAL path
  // carries real instances (not just misses).
  const std::size_t m = ops.size() / 2;
  if (m >= 1) {
    const PointSet& src = ops[m - 1].pts;
    PointSet victims(
        src.begin(),
        src.begin() + static_cast<std::ptrdiff_t>(
                          std::min<std::size_t>(25, src.size())));
    ops.insert(ops.begin() + static_cast<std::ptrdiff_t>(m),
               Op{Op::kRemove, std::move(victims), 0.0});
  }
  return ops;
}

void apply_op(core::IncrementalEstimator& est, const Op& op) {
  switch (op.kind) {
    case Op::kAdd:
      est.add(op.pts);
      return;
    case Op::kAdvance:
      est.advance_window(op.pts, op.cutoff);
      return;
    case Op::kRemove:
      est.remove(op.pts);
      return;
  }
}

void feed(core::IncrementalEstimator& est, const std::vector<Op>& ops,
          std::size_t from) {
  for (std::size_t k = from; k < ops.size(); ++k) apply_op(est, ops[k]);
}

io::WalRecord make_record(io::WalRecordType type, std::uint64_t seq,
                          double cutoff, PointSet pts) {
  io::WalRecord r;
  r.type = type;
  r.seq = seq;
  r.cutoff = cutoff;
  r.points = std::move(pts);
  return r;
}

// ---------------------------------------------------------------------------
// WAL framing

TEST(Wal, RoundTripsRecordsExactly) {
  const std::string dir = fresh_dir("wal_roundtrip");
  const std::string path = dir + "/wal.0.log";
  const PointSet a = {{1.5, 2.5, 3.5}, {-1.0, 0.0, 42.0}};
  const PointSet b = {{7.0, 8.0, 9.0}};
  {
    io::WalWriter w(path, io::WalSync::kNone, /*truncate=*/true);
    w.append(make_record(io::WalRecordType::kAdd, 1, 0.0, a));
    w.append(make_record(io::WalRecordType::kAdvance, 2, 3.25, b));
    w.append(make_record(io::WalRecordType::kRemove, 3, 0.0, {}));
    EXPECT_EQ(w.records(), 3u);
  }
  const io::WalReplay rep = io::read_wal(path);
  EXPECT_FALSE(rep.torn);
  EXPECT_EQ(rep.valid_bytes, rep.file_bytes);
  ASSERT_EQ(rep.records.size(), 3u);
  EXPECT_EQ(rep.records[0].type, io::WalRecordType::kAdd);
  EXPECT_EQ(rep.records[0].seq, 1u);
  ASSERT_EQ(rep.records[0].points.size(), 2u);
  EXPECT_EQ(rep.records[0].points[1], a[1]);
  EXPECT_EQ(rep.records[1].type, io::WalRecordType::kAdvance);
  EXPECT_DOUBLE_EQ(rep.records[1].cutoff, 3.25);
  EXPECT_EQ(rep.records[1].points[0], b[0]);
  EXPECT_EQ(rep.records[2].type, io::WalRecordType::kRemove);
  EXPECT_TRUE(rep.records[2].points.empty());
}

TEST(Wal, MissingFileIsAnEmptyReplay) {
  const io::WalReplay rep = io::read_wal("/nonexistent/stkde/wal.0.log");
  EXPECT_TRUE(rep.records.empty());
  EXPECT_FALSE(rep.torn);
  EXPECT_EQ(rep.file_bytes, 0u);
}

TEST(Wal, ForeignMagicThrowsInsteadOfTruncating) {
  const std::string dir = fresh_dir("wal_foreign");
  const std::string path = dir + "/wal.0.log";
  {
    std::ofstream f(path, std::ios::binary);
    f << "NOTAWAL!garbage";
  }
  EXPECT_THROW((void)io::read_wal(path), std::runtime_error);
}

TEST(Wal, TornTailIsDetectedAndTruncated) {
  const std::string dir = fresh_dir("wal_torn");
  const std::string path = dir + "/wal.0.log";
  {
    io::WalWriter w(path, io::WalSync::kNone, /*truncate=*/true);
    w.append(make_record(io::WalRecordType::kAdd, 1, 0.0, {{1, 2, 3}}));
    w.append(make_record(io::WalRecordType::kAdd, 2, 0.0, {{4, 5, 6}}));
  }
  // A crash mid-append: a few bytes of the next record made it to disk.
  append_bytes(path, std::vector<char>(11, '\xAB'));
  io::WalReplay rep = io::read_wal(path);
  EXPECT_TRUE(rep.torn);
  ASSERT_EQ(rep.records.size(), 2u);
  EXPECT_LT(rep.valid_bytes, rep.file_bytes);

  io::truncate_wal(path, rep.valid_bytes);
  rep = io::read_wal(path);
  EXPECT_FALSE(rep.torn);
  EXPECT_EQ(rep.records.size(), 2u);
  EXPECT_EQ(rep.valid_bytes, rep.file_bytes);

  // The repaired log accepts appends again.
  {
    io::WalWriter w(path, io::WalSync::kNone);
    w.append(make_record(io::WalRecordType::kAdd, 3, 0.0, {{7, 8, 9}}));
  }
  EXPECT_EQ(io::read_wal(path).records.size(), 3u);
}

TEST(Wal, CorruptMidFileRecordStopsTheScan) {
  const std::string dir = fresh_dir("wal_corrupt");
  const std::string path = dir + "/wal.0.log";
  {
    io::WalWriter w(path, io::WalSync::kNone, /*truncate=*/true);
    w.append(make_record(io::WalRecordType::kAdd, 1, 0.0, {{1, 2, 3}, {4, 5, 6}}));
    w.append(make_record(io::WalRecordType::kAdd, 2, 0.0, {{7, 8, 9}}));
  }
  // Record 1: 20-byte header + 2 x 24-byte points = 68 bytes after the
  // 8-byte magic. Flip a payload byte inside record 2.
  flip_byte(path, 8 + 68 + 30);
  const io::WalReplay rep = io::read_wal(path);
  EXPECT_TRUE(rep.torn);
  ASSERT_EQ(rep.records.size(), 1u);
  EXPECT_EQ(rep.records[0].seq, 1u);
}

// ---------------------------------------------------------------------------
// Checked stdio (io/checked_io.hpp): the single error path the WAL and the
// checkpoint writer share. A short write — disk full, closed stream — must
// throw with errno's text attached, not silently drop bytes.

TEST(CheckedIo, ShortWriteThrowsWithErrnoDetail) {
  const std::string dir = fresh_dir("checked_io_short");
  const std::string path = dir + "/victim.bin";
  { std::ofstream(path) << "seed"; }
  // A stream opened read-only makes every fwrite a deterministic short
  // write (0 of n bytes land), the same observable as ENOSPC mid-buffer.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  const char payload[] = "payload";
  try {
    io::checked_write(f, payload, sizeof(payload), "wal", path);
    std::fclose(f);
    FAIL() << "short write must throw";
  } catch (const std::runtime_error& e) {
    std::fclose(f);
    const std::string msg = e.what();
    EXPECT_NE(msg.find("wal: write failed"), std::string::npos) << msg;
    EXPECT_NE(msg.find(path), std::string::npos) << msg;
  }
}

TEST(CheckedIo, ZeroByteWriteIsANoOp) {
  const std::string dir = fresh_dir("checked_io_zero");
  const std::string path = dir + "/victim.bin";
  std::FILE* f = std::fopen(path.c_str(), "rb");  // nonexistent is fine too
  if (f == nullptr) f = std::fopen((dir + "/other.bin").c_str(), "wb");
  ASSERT_NE(f, nullptr);
  EXPECT_NO_THROW(io::checked_write(f, nullptr, 0, "wal", path));
  std::fclose(f);
}

TEST(CheckedIo, WalAppendSurfacesShortWriteAsRuntimeError) {
  const std::string dir = fresh_dir("checked_io_wal");
  const std::string path = dir + "/wal.0.log";
  auto w = std::make_unique<io::WalWriter>(path, io::WalSync::kNone,
                                           /*truncate=*/true);
  // Yank the file out from under the writer's buffered stream: make the
  // next flush fail the way a full disk would. freopen to read-only mode
  // on the same FILE keeps the pointer valid but write-hostile.
  ASSERT_NE(std::freopen(path.c_str(), "rb", w->file_for_test()), nullptr);
  EXPECT_THROW(
      w->append(make_record(io::WalRecordType::kAdd, 1, 0.0, {{1, 2, 3}})),
      std::runtime_error);
  // Destructor must still be safe after the failed append.
  EXPECT_NO_THROW(w.reset());
}

// ---------------------------------------------------------------------------
// DurableLog: checkpoint + WAL generations

TEST(DurableLog, CheckpointRotatesGenerationsAndRecovers) {
  const std::string dir = fresh_dir("durlog_rotate");
  const PointSet live = {{1, 2, 3}, {4, 5, 6}};
  DensityGrid grid(Extent3{0, 4, 0, 3, 0, 2});
  grid.fill(3.25f);
  {
    core::DurableLog log(dir, io::WalSync::kNone);
    EXPECT_FALSE(log.has_prior_state());
    log.append(make_record(io::WalRecordType::kAdd, 1, 0.0, {{1, 2, 3}}));
    log.append(make_record(io::WalRecordType::kAdvance, 2, 1.5, {{4, 5, 6}}));
    log.checkpoint(2, 1.5, live, grid);
    EXPECT_EQ(log.generation(), 1u);
    // Post-rotation records land in the new generation's log.
    log.append(make_record(io::WalRecordType::kAdd, 3, 0.0, {{7, 8, 9}}));
    // The superseded generation-0 log is gone.
    EXPECT_FALSE(fs::exists(dir + "/wal.0.log"));
  }
  core::DurableLog log2(dir, io::WalSync::kNone);
  EXPECT_TRUE(log2.has_prior_state());
  const core::DurableLog::Recovered rec = log2.recover();
  EXPECT_TRUE(rec.have_checkpoint);
  EXPECT_EQ(rec.gen, 1u);
  EXPECT_EQ(rec.last_seq, 2u);
  EXPECT_DOUBLE_EQ(rec.last_cutoff, 1.5);
  ASSERT_EQ(rec.live.size(), 2u);
  EXPECT_EQ(rec.live[1], live[1]);
  EXPECT_EQ(rec.grid.at(0, 0, 0), 3.25f);
  EXPECT_EQ(rec.grid.max_abs_diff(grid), 0.0);
  ASSERT_EQ(rec.tail.size(), 1u);
  EXPECT_EQ(rec.tail[0].seq, 3u);
  EXPECT_FALSE(rec.torn);
}

TEST(DurableLog, PriorStateRefusesAppendUntilRecovered) {
  const std::string dir = fresh_dir("durlog_latch");
  {
    core::DurableLog log(dir, io::WalSync::kNone);
    log.append(make_record(io::WalRecordType::kAdd, 1, 0.0, {{1, 2, 3}}));
  }
  core::DurableLog log2(dir, io::WalSync::kNone);
  ASSERT_TRUE(log2.has_prior_state());
  // Silently interleaving a new history into the old log is the one
  // corruption this layer cannot detect after the fact.
  EXPECT_THROW(
      log2.append(make_record(io::WalRecordType::kAdd, 1, 0.0, {{9, 9, 9}})),
      std::logic_error);
  (void)log2.recover();
  EXPECT_NO_THROW(
      log2.append(make_record(io::WalRecordType::kAdd, 2, 0.0, {{9, 9, 9}})));
}

TEST(DurableLog, CorruptCheckpointThrowsOnRecover) {
  const std::string dir = fresh_dir("durlog_corrupt");
  DensityGrid grid(Extent3{0, 4, 0, 3, 0, 2});
  grid.fill(1.0f);
  {
    core::DurableLog log(dir, io::WalSync::kNone);
    log.checkpoint(5, 2.0, {{1, 2, 3}}, grid);
  }
  const std::string ck = dir + "/checkpoint.ck";
  flip_byte(ck, fs::file_size(ck) / 2);
  core::DurableLog log2(dir, io::WalSync::kNone);
  EXPECT_THROW((void)log2.recover(), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Estimator recovery (no fault injection): durable state reconstructs the
// uninterrupted stream.

TEST(Recovery, RecoverRestoresUninterruptedStream) {
  const auto tiny = stkde::testing::make_tiny(4000, 3, 2);
  const auto ops = make_ops(tiny.points, 200, /*window=*/4.0);
  const std::string dir = fresh_dir("rec_roundtrip");

  core::StreamConfig cfg;
  cfg.durability.dir = dir;
  cfg.durability.checkpoint_events = 1700;  // several mid-run checkpoints

  DensityGrid final_grid(tiny.domain.dims());
  std::size_t final_live = 0;
  {
    core::IncrementalEstimator a(tiny.domain, tiny.params, cfg);
    feed(a, ops, 0);
    final_grid = a.snapshot();
    final_live = a.live_count();
    EXPECT_EQ(a.batch_seq(), ops.size());
    EXPECT_GT(a.stats().durable_checkpoints, 0u);
    EXPECT_GT(a.stats().wal_records, 0u);
  }

  core::IncrementalEstimator b(tiny.domain, tiny.params, cfg);
  const core::RecoverReport rep = b.recover();
  EXPECT_TRUE(rep.checkpoint_loaded);
  EXPECT_GT(rep.batches_replayed, 0u);
  EXPECT_FALSE(rep.wal_torn);
  EXPECT_EQ(rep.last_batch_seq, ops.size());
  EXPECT_EQ(b.batch_seq(), ops.size());
  EXPECT_EQ(b.live_count(), final_live);
  const double tol = 1e-5 * static_cast<double>(final_grid.max_value());
  EXPECT_LE(b.snapshot().max_abs_diff(final_grid), tol);

  // The recovered estimator keeps streaming: the feeder resumes at
  // last_batch_seq + 1 (here: one brand-new batch).
  const std::size_t live_before = b.live_count();
  b.add(PointSet{ops.back().pts.begin(), ops.back().pts.begin() + 5});
  EXPECT_EQ(b.batch_seq(), ops.size() + 1);
  EXPECT_GE(b.live_count(), live_before);
}

TEST(Recovery, EmptyDirectoryIsAFreshStart) {
  const auto tiny = stkde::testing::make_tiny(64, 3, 2);
  const std::string dir = fresh_dir("rec_empty");
  core::StreamConfig cfg;
  cfg.durability.dir = dir;
  core::IncrementalEstimator est(tiny.domain, tiny.params, cfg);
  const core::RecoverReport rep = est.recover();
  EXPECT_FALSE(rep.checkpoint_loaded);
  EXPECT_EQ(rep.batches_replayed, 0u);
  EXPECT_EQ(rep.last_batch_seq, 0u);
  // "Recover-or-start" is one call: the stream is live afterwards.
  est.add(tiny.points);
  EXPECT_EQ(est.live_count(), tiny.points.size());
  EXPECT_EQ(est.batch_seq(), 1u);
}

TEST(Recovery, RecoveryIsIdempotent) {
  const auto tiny = stkde::testing::make_tiny(2000, 3, 2);
  const auto ops = make_ops(tiny.points, 250, /*window=*/4.0);
  const std::string dir = fresh_dir("rec_idempotent");
  core::StreamConfig cfg;
  cfg.durability.dir = dir;
  cfg.durability.checkpoint_events = 1500;
  {
    core::IncrementalEstimator a(tiny.domain, tiny.params, cfg);
    feed(a, ops, 0);
  }
  DensityGrid first(tiny.domain.dims());
  std::size_t first_live = 0;
  {
    core::IncrementalEstimator b(tiny.domain, tiny.params, cfg);
    (void)b.recover();
    first = b.snapshot();
    first_live = b.live_count();
  }
  // Recovery reads, repairs, and reopens — it must not change what a second
  // recovery sees. Serial replay is deterministic: bit-identical grids.
  core::IncrementalEstimator c(tiny.domain, tiny.params, cfg);
  (void)c.recover();
  EXPECT_EQ(c.live_count(), first_live);
  EXPECT_EQ(c.snapshot().max_abs_diff(first), 0.0);
}

TEST(Recovery, TornWalTailIsTruncatedOnRecover) {
  const auto tiny = stkde::testing::make_tiny(2000, 3, 2);
  const auto ops = make_ops(tiny.points, 250, /*window=*/4.0);
  const std::string dir = fresh_dir("rec_torn");
  core::StreamConfig cfg;
  cfg.durability.dir = dir;
  cfg.durability.checkpoint_events = 0;  // no rotation: wal.0.log holds all
  DensityGrid final_grid(tiny.domain.dims());
  std::size_t final_live = 0;
  {
    core::IncrementalEstimator a(tiny.domain, tiny.params, cfg);
    feed(a, ops, 0);
    final_grid = a.snapshot();
    final_live = a.live_count();
  }
  // Process death mid-append: garbage prefix of a record at the tail.
  append_bytes(find_wal(dir), std::vector<char>(13, '\x7F'));

  core::IncrementalEstimator b(tiny.domain, tiny.params, cfg);
  const core::RecoverReport rep = b.recover();
  EXPECT_TRUE(rep.wal_torn);
  EXPECT_GT(rep.truncated_bytes, 0u);
  EXPECT_EQ(rep.last_batch_seq, ops.size());
  EXPECT_EQ(b.live_count(), final_live);
  const double tol = 1e-5 * static_cast<double>(final_grid.max_value());
  EXPECT_LE(b.snapshot().max_abs_diff(final_grid), tol);
}

TEST(Recovery, UsedEstimatorRefusesRecover) {
  const auto tiny = stkde::testing::make_tiny(32, 3, 2);
  const std::string dir = fresh_dir("rec_used");
  core::StreamConfig cfg;
  cfg.durability.dir = dir;
  core::IncrementalEstimator est(tiny.domain, tiny.params, cfg);
  est.add(tiny.points);
  EXPECT_THROW((void)est.recover(), std::logic_error);
}

TEST(Recovery, MismatchedDomainIsRejected) {
  const auto tiny = stkde::testing::make_tiny(200, 3, 2);
  const std::string dir = fresh_dir("rec_mismatch");
  core::StreamConfig cfg;
  cfg.durability.dir = dir;
  {
    core::IncrementalEstimator a(tiny.domain, tiny.params, cfg);
    a.add(tiny.points);
    a.durable_checkpoint();
  }
  // A grid checkpointed for one domain must never be poured into another.
  DomainSpec other = tiny.domain;
  other.gx += 4;
  core::IncrementalEstimator b(other, tiny.params, cfg);
  EXPECT_THROW((void)b.recover(), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Ingest admission + quarantine

TEST(Quarantine, AdmissionRejectsAndCountsByReason) {
  const auto tiny = stkde::testing::make_tiny(8, 3, 2);
  core::StreamConfig cfg;
  core::IncrementalEstimator est(tiny.domain, tiny.params, cfg);

  const double nan = std::numeric_limits<double>::quiet_NaN();
  est.add({{5, 5, 5}, {nan, 1, 1}, {500, 500, 5}, {6, 6, 6}});
  EXPECT_EQ(est.live_count(), 2u);
  EXPECT_EQ(est.stats().quarantined_nonfinite, 1u);
  EXPECT_EQ(est.stats().quarantined_domain, 1u);

  // Slide the window to t >= 8, then feed an event that is already expired:
  // stale, quarantined, and counted dead-on-arrival.
  est.advance_window({{7, 7, 9}}, 8.0);
  const std::uint64_t dead_before = est.stats().dead_on_arrival;
  est.add({{5, 5, 2.0}});
  EXPECT_EQ(est.stats().quarantined_stale, 1u);
  EXPECT_EQ(est.stats().dead_on_arrival, dead_before + 1);
  EXPECT_EQ(est.live_count(), 1u);  // the stale event never scattered

  const auto ring = est.quarantine();
  ASSERT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring[0].reason, core::QuarantineReason::kNonFinite);
  EXPECT_EQ(ring[1].reason, core::QuarantineReason::kOutOfDomain);
  EXPECT_EQ(ring[2].reason, core::QuarantineReason::kStale);
  EXPECT_DOUBLE_EQ(ring[2].point.t, 2.0);

  const core::EngineHealth h = est.health();
  EXPECT_EQ(h.quarantined_total(), 3u);
  EXPECT_EQ(h.quarantine_dropped, 0u);
  EXPECT_FALSE(h.poisoned);
}

TEST(Quarantine, RingIsBoundedAndCountsEvictions) {
  const auto tiny = stkde::testing::make_tiny(8, 3, 2);
  core::StreamConfig cfg;
  cfg.quarantine_capacity = 4;
  core::IncrementalEstimator est(tiny.domain, tiny.params, cfg);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  PointSet bad;
  for (int i = 0; i < 7; ++i)
    bad.push_back({nan, static_cast<double>(i), 1.0});
  est.add(bad);
  EXPECT_EQ(est.live_count(), 0u);
  const auto ring = est.quarantine();
  ASSERT_EQ(ring.size(), 4u);  // oldest three evicted, newest four kept
  EXPECT_DOUBLE_EQ(ring.front().point.y, 3.0);
  EXPECT_DOUBLE_EQ(ring.back().point.y, 6.0);
  EXPECT_EQ(est.stats().quarantine_dropped, 3u);
  EXPECT_EQ(est.health().quarantine_dropped, 3u);
}

TEST(Quarantine, LegacyModeAdmitsEverything) {
  const auto tiny = stkde::testing::make_tiny(8, 3, 2);
  core::StreamConfig cfg;
  cfg.admission = false;
  core::IncrementalEstimator est(tiny.domain, tiny.params, cfg);
  // Out-of-domain events clamp-scatter as before; nothing is quarantined.
  est.add({{5, 5, 5}, {500, 500, 5}});
  EXPECT_EQ(est.live_count(), 2u);
  EXPECT_EQ(est.health().quarantined_total(), 0u);
}

// ---------------------------------------------------------------------------
// Serve-side graceful degradation

serve::Session make_session(const serve::SnapshotRegistry& reg,
                            serve::SessionConfig cfg = {}) {
  return serve::Session(reg, cfg);
}

wire::Frame ask(const serve::Session& session, const wire::QueryMessage& q) {
  const wire::Frame f = wire::encode(q);
  return serve::serve_frame(session, f.data(), f.size());
}

TEST(DegradedServe, EmptyRegistryAnswersTypedErrorsNotThrows) {
  const auto tiny = stkde::testing::make_tiny(8, 3, 2);
  serve::SnapshotRegistry reg(tiny.domain);
  serve::Session session = make_session(reg);

  const serve::BeginResult begin = session.begin_request();
  EXPECT_FALSE(begin.ok());
  EXPECT_EQ(begin.state, serve::SessionState::kNoData);
  EXPECT_EQ(begin.version, 0u);

  const std::vector<wire::QueryMessage> queries = {
      wire::DensityAtQuery{{5, 5, 5}},
      wire::RegionQuery{Extent3{0, 4, 0, 4, 0, 4}, wire::RegionOp::kSum},
      wire::SliceQuery{0},
      wire::HotspotsQuery{4, 0.9},
      wire::RegionGridQuery{Extent3{0, 4, 0, 4, 0, 4}},
  };
  for (const auto& q : queries) {
    const wire::Frame resp = ask(session, q);
    const auto decoded = wire::decode_response(resp.data(), resp.size());
    ASSERT_TRUE(decoded.has_value());
    const auto* err = std::get_if<wire::ErrorResponse>(&*decoded);
    ASSERT_NE(err, nullptr) << "data query before first publish";
    EXPECT_EQ(err->code, wire::ErrorCode::kUnavailable);
    EXPECT_FALSE(err->message.empty());
  }
}

TEST(DegradedServe, HealthEndpointAnswersBeforeFirstPublish) {
  const auto tiny = stkde::testing::make_tiny(8, 3, 2);
  serve::SnapshotRegistry reg(tiny.domain);
  serve::Session session = make_session(reg);
  const wire::Frame resp = ask(session, wire::HealthQuery{});
  const auto decoded = wire::decode_response(resp.data(), resp.size());
  ASSERT_TRUE(decoded.has_value());
  const auto* hr = std::get_if<wire::HealthResponse>(&*decoded);
  ASSERT_NE(hr, nullptr);
  EXPECT_EQ(hr->state, serve::SessionState::kNoData);
  EXPECT_EQ(hr->version, 0u);
  EXPECT_EQ(hr->head_version, 0u);
  EXPECT_EQ(hr->staleness_ms, std::numeric_limits<std::uint64_t>::max());
}

TEST(DegradedServe, WriterStallDegradesButKeepsServing) {
  const auto tiny = stkde::testing::make_tiny(600, 3, 2);
  core::StreamConfig cfg;
  core::IncrementalEstimator eng(tiny.domain, tiny.params, cfg);
  serve::SnapshotRegistry reg(eng);
  eng.add(tiny.points);

  serve::SessionConfig scfg;
  scfg.stall_after = std::chrono::milliseconds{40};
  serve::Session session = make_session(reg, scfg);

  const serve::BeginResult fresh = session.begin_request();
  ASSERT_EQ(fresh.state, serve::SessionState::kFresh);
  ASSERT_GT(fresh.version, 0u);

  // The writer goes quiet past the stall threshold: requests degrade but
  // keep answering from the last-good pin.
  std::this_thread::sleep_for(std::chrono::milliseconds{120});
  const serve::BeginResult stalled = session.begin_request();
  EXPECT_EQ(stalled.state, serve::SessionState::kDegraded);
  EXPECT_EQ(stalled.version, fresh.version);

  const wire::Frame resp =
      ask(session, wire::DensityAtQuery{{12, 10, 8}});
  const auto decoded = wire::decode_response(resp.data(), resp.size());
  ASSERT_TRUE(decoded.has_value());
  const auto* da = std::get_if<wire::DensityAtResponse>(&*decoded);
  ASSERT_NE(da, nullptr) << "degraded sessions still answer data queries";
  EXPECT_EQ(da->version, stalled.version);

  const wire::Frame hresp = ask(session, wire::HealthQuery{});
  const auto hdec = wire::decode_response(hresp.data(), hresp.size());
  ASSERT_TRUE(hdec.has_value());
  const auto* hr = std::get_if<wire::HealthResponse>(&*hdec);
  ASSERT_NE(hr, nullptr);
  EXPECT_EQ(hr->state, serve::SessionState::kDegraded);
  EXPECT_GE(hr->staleness_ms, 40u);

  // The writer resumes: the next request is fresh again.
  eng.add(PointSet{tiny.points[0]});
  const serve::BeginResult resumed = session.begin_request();
  EXPECT_EQ(resumed.state, serve::SessionState::kFresh);
  EXPECT_GT(resumed.version, stalled.version);
}

TEST(DegradedServe, AwaitVersionTimeoutKeepsLastGoodPin) {
  const auto tiny = stkde::testing::make_tiny(200, 3, 2);
  core::StreamConfig cfg;
  core::IncrementalEstimator eng(tiny.domain, tiny.params, cfg);
  serve::SnapshotRegistry reg(eng);
  eng.add(tiny.points);

  serve::SessionConfig scfg;
  scfg.request_deadline = std::chrono::milliseconds{60};
  serve::Session session = make_session(reg, scfg);

  const std::uint64_t head = reg.head_version();
  const auto t0 = std::chrono::steady_clock::now();
  const serve::BeginResult late = session.await_version(head + 3);
  const auto waited = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(late.state, serve::SessionState::kDegraded);
  EXPECT_EQ(late.version, head);  // last-good pin, not an error
  EXPECT_GE(waited, std::chrono::milliseconds{50});

  // An already-satisfied target returns fresh without blocking.
  const serve::BeginResult now = session.await_version(head);
  EXPECT_EQ(now.state, serve::SessionState::kFresh);
  EXPECT_EQ(now.version, head);
}

TEST(DegradedServe, AwaitVersionWakesOnConcurrentPublish) {
  const auto tiny = stkde::testing::make_tiny(8, 3, 2);
  serve::SnapshotRegistry reg(tiny.domain);
  auto grid = std::make_shared<DensityGrid>(tiny.domain.dims());
  grid->fill(1.0f);
  reg.publish(serve::Snapshot{grid, 10, 1});

  serve::SessionConfig scfg;
  scfg.request_deadline = std::chrono::milliseconds{2000};
  serve::Session session = make_session(reg, scfg);

  std::thread publisher([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds{50});
    reg.publish(serve::Snapshot{grid, 10, 2});
  });
  const auto t0 = std::chrono::steady_clock::now();
  const serve::BeginResult r = session.await_version(2);
  const auto waited = std::chrono::steady_clock::now() - t0;
  publisher.join();
  EXPECT_EQ(r.state, serve::SessionState::kFresh);
  EXPECT_EQ(r.version, 2u);
  // Backoff slices cap at 64 ms: the wake is prompt, not deadline-bound.
  EXPECT_LT(waited, std::chrono::milliseconds{1500});
}

// ---------------------------------------------------------------------------
// Chaos: fault injection against the full stack (failpoint builds only)

class Chaos : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!fp::enabled()) GTEST_SKIP() << "requires -DSTKDE_FAILPOINTS=ON";
    fp::disarm_all();
  }
  void TearDown() override { fp::disarm_all(); }
};

TEST_F(Chaos, InjectedErrorRollsBackAndTheStreamContinues) {
  const auto tiny = stkde::testing::make_tiny(2000, 3, 2);
  const auto half = tiny.points.begin() +
                    static_cast<std::ptrdiff_t>(tiny.points.size() / 2);
  const PointSet first(tiny.points.begin(), half);
  const PointSet second(half, tiny.points.end());

  core::IncrementalEstimator est(tiny.domain, tiny.params);
  est.add(first);

  fp::Spec spec;
  spec.action = fp::Action::kError;
  spec.after_hits = 1;
  fp::arm("stream.ingest.serial", spec);
  EXPECT_THROW(est.add(second), util::InjectedFault);
  // Error-class faults follow the failure contract: rollback, not poison.
  EXPECT_FALSE(est.poisoned());
  EXPECT_GE(est.stats().recoveries, 1u);
  EXPECT_EQ(est.live_count(), first.size());

  // The at-least-once feeder retries the same batch; the stream converges
  // to exactly the uninterrupted result.
  fp::disarm_all();
  est.add(second);
  core::IncrementalEstimator clean(tiny.domain, tiny.params);
  clean.add(first);
  clean.add(second);
  EXPECT_EQ(est.live_count(), clean.live_count());
  const DensityGrid want = clean.snapshot();
  const double tol = 1e-5 * static_cast<double>(want.max_value());
  EXPECT_LE(est.snapshot().max_abs_diff(want), tol);
}

TEST_F(Chaos, ServeFrameFaultBecomesAnInternalErrorFrame) {
  const auto tiny = stkde::testing::make_tiny(400, 3, 2);
  core::IncrementalEstimator eng(tiny.domain, tiny.params);
  serve::SnapshotRegistry reg(eng);
  eng.add(tiny.points);
  serve::Session session = make_session(reg);
  (void)session.begin_request();

  for (const fp::Action action : {fp::Action::kError, fp::Action::kCrash}) {
    fp::Spec spec;
    spec.action = action;
    spec.after_hits = 1;
    fp::arm("serve.frame", spec);
    wire::Frame resp;
    // The transport contract survives injected faults of either class:
    // serve_frame never throws, it answers a kInternal error frame.
    EXPECT_NO_THROW(resp = ask(session, wire::DensityAtQuery{{5, 5, 5}}));
    const auto decoded = wire::decode_response(resp.data(), resp.size());
    ASSERT_TRUE(decoded.has_value());
    const auto* err = std::get_if<wire::ErrorResponse>(&*decoded);
    ASSERT_NE(err, nullptr);
    EXPECT_EQ(err->code, wire::ErrorCode::kInternal);
    EXPECT_NE(err->message.find("serve.frame"), std::string::npos);
  }

  fp::disarm_all();
  const wire::Frame ok = ask(session, wire::DensityAtQuery{{5, 5, 5}});
  const auto decoded = wire::decode_response(ok.data(), ok.size());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_NE(std::get_if<wire::DensityAtResponse>(&*decoded), nullptr);
}

/// The crash matrix: for every failpoint site traversed by a durable
/// sliding-window feed, (1) probe the site's traversal count, (2) re-run
/// with a crash planted at the midpoint, (3) confirm the estimator
/// poisons, (4) recover into a fresh estimator, resume the feed at
/// last_batch_seq + 1, and (5) match the uninterrupted reference within
/// 1e-5 of its peak density.
void run_crash_matrix(int threads, std::size_t n_events, std::size_t batch,
                      const std::vector<std::string>& sites,
                      const std::string& tag) {
  const auto tiny = stkde::testing::make_tiny(n_events, 3, 2);
  const auto ops = make_ops(tiny.points, batch, /*window=*/4.0);

  core::StreamConfig base;
  base.threads = threads;
  // Several drift rebuilds over the run, so stream.rebuild is traversed.
  base.checkpoint_retires = std::max<std::uint64_t>(1000, n_events / 3);

  core::IncrementalEstimator ref(tiny.domain, tiny.params, base);
  feed(ref, ops, 0);
  ref.checkpoint();
  const DensityGrid ref_grid = ref.snapshot();
  const std::size_t ref_live = ref.live_count();
  const double tol = 1e-5 * static_cast<double>(ref_grid.max_value());
  ASSERT_GT(tol, 0.0);

  const std::string dir = fresh_dir("chaos_" + tag);
  core::StreamConfig dcfg = base;
  dcfg.durability.dir = dir;
  dcfg.durability.sync = io::WalSync::kBatch;  // traverses wal.sync
  dcfg.durability.checkpoint_events =
      std::max<std::uint64_t>(1000, n_events / 3);

  // One probe run counts every site's traversals under this configuration
  // (sites armed with the default kOff spec count hits but never fire).
  for (const auto& s : sites) fp::arm(s, fp::Spec{});
  core::DurableLog::reset_dir(dir);
  {
    core::IncrementalEstimator probe(tiny.domain, tiny.params, dcfg);
    feed(probe, ops, 0);
  }
  std::map<std::string, std::uint64_t> traversals;
  for (const auto& s : sites) traversals[s] = fp::hits(s);
  fp::disarm_all();

  for (const auto& site : sites) {
    SCOPED_TRACE(site);
    const std::uint64_t h = traversals[site];
    ASSERT_GT(h, 0u) << "site never traversed in this configuration";

    fp::Spec crash;
    crash.action = fp::Action::kCrash;
    crash.after_hits = std::max<std::uint64_t>(1, h / 2);
    fp::arm(site, crash);
    core::DurableLog::reset_dir(dir);
    bool crashed = false;
    {
      core::IncrementalEstimator victim(tiny.domain, tiny.params, dcfg);
      try {
        feed(victim, ops, 0);
      } catch (const util::InjectedCrash&) {
        crashed = true;
        EXPECT_TRUE(victim.poisoned());
        // Poison is sticky: every later writer-side op refuses.
        EXPECT_THROW(victim.add(ops.front().pts), std::logic_error);
      }
    }
    fp::disarm_all();
    ASSERT_TRUE(crashed) << "armed crash never fired (hits=" << h << ")";

    core::IncrementalEstimator rec(tiny.domain, tiny.params, dcfg);
    const core::RecoverReport rep = rec.recover();
    EXPECT_EQ(rec.batch_seq(), rep.last_batch_seq);
    ASSERT_LE(rep.last_batch_seq, ops.size());
    feed(rec, ops, rep.last_batch_seq);
    rec.checkpoint();
    EXPECT_EQ(rec.live_count(), ref_live);
    EXPECT_LE(rec.snapshot().max_abs_diff(ref_grid), tol);
  }
}

TEST_F(Chaos, CrashAtEverySiteRecoversSerial) {
  run_crash_matrix(
      /*threads=*/1, kMatrixEventsSerial, /*batch=*/500,
      {
          "stream.add",
          "stream.advance",
          "stream.ingest.serial",
          "stream.publish",
          "stream.rebuild",
          "wal.append",
          "wal.append.torn",
          "wal.sync",
          "durable.checkpoint",
          "durable.checkpoint.commit",
      },
      "serial");
}

TEST_F(Chaos, CrashDuringRecoveryLeavesASecondRecoveryIntact) {
  // Crashing *inside* recovery itself must not damage the durable state a
  // later recovery reads: DurableLog::recover only repairs (torn-tail
  // truncation, itself idempotent) and WAL replay mutates nothing but the
  // in-memory estimator being built. Plant crashes at both recovery-path
  // sites and prove a second, undisturbed recovery still reconstructs the
  // reference exactly.
  const auto tiny = stkde::testing::make_tiny(2000, 3, 2);
  const auto ops = make_ops(tiny.points, 250, /*window=*/4.0);
  const std::string dir = fresh_dir("chaos_rec_crash");
  core::StreamConfig cfg;
  cfg.durability.dir = dir;
  cfg.durability.checkpoint_events = 1000;  // checkpoint mid-run: a real
                                            // WAL tail remains to replay
  {
    core::IncrementalEstimator a(tiny.domain, tiny.params, cfg);
    feed(a, ops, 0);
    ASSERT_GT(a.stats().durable_checkpoints, 0u);
  }

  // The undisturbed reference recovery.
  DensityGrid want(tiny.domain.dims());
  std::size_t want_live = 0;
  std::uint64_t want_seq = 0;
  {
    core::IncrementalEstimator ref(tiny.domain, tiny.params, cfg);
    const core::RecoverReport rep = ref.recover();
    ASSERT_TRUE(rep.checkpoint_loaded);
    ASSERT_GT(rep.batches_replayed, 0u)
        << "no WAL tail: stream.recover.replay would go untested";
    want = ref.snapshot();
    want_live = ref.live_count();
    want_seq = rep.last_batch_seq;
  }
  const double tol = 1e-5 * static_cast<double>(want.max_value());
  ASSERT_GT(tol, 0.0);

  for (const std::string site : {"durable.recover", "stream.recover.replay"}) {
    SCOPED_TRACE(site);
    // Probe how often one recovery traverses this site.
    fp::arm(site, fp::Spec{});
    {
      core::IncrementalEstimator probe(tiny.domain, tiny.params, cfg);
      (void)probe.recover();
    }
    const std::uint64_t h = fp::hits(site);
    fp::disarm_all();
    ASSERT_GT(h, 0u) << "site never traversed during recovery";

    // Crash at the midpoint of the recovery replay...
    fp::Spec crash;
    crash.action = fp::Action::kCrash;
    crash.after_hits = std::max<std::uint64_t>(1, h / 2);
    fp::arm(site, crash);
    {
      core::IncrementalEstimator victim(tiny.domain, tiny.params, cfg);
      EXPECT_THROW((void)victim.recover(), util::InjectedCrash);
    }
    fp::disarm_all();

    // ...and the second recovery sees durable state untouched by the first
    // attempt's death: same sequence, same live set, same grid. No writes
    // here — both sites must recover against the same durable state.
    core::IncrementalEstimator again(tiny.domain, tiny.params, cfg);
    const core::RecoverReport rep = again.recover();
    EXPECT_EQ(rep.last_batch_seq, want_seq);
    EXPECT_EQ(again.live_count(), want_live);
    EXPECT_LE(again.snapshot().max_abs_diff(want), tol);
  }

  // The twice-recovered estimator is live, not a museum piece. Once, after
  // the site loop: this add appends to the WAL, so doing it between sites
  // would shift the durable state the next site recovers against.
  core::IncrementalEstimator live(tiny.domain, tiny.params, cfg);
  (void)live.recover();
  live.add(PointSet{ops.back().pts.begin(), ops.back().pts.begin() + 3});
  EXPECT_EQ(live.batch_seq(), want_seq + 1);
}

TEST_F(Chaos, CrashAtEverySiteRecoversSharded) {
  run_crash_matrix(
      /*threads=*/2, kMatrixEventsSharded, /*batch=*/400,
      {
          "pool.submit",
          "cache.acquire",
          "stream.ingest.sharded",
          "stream.publish",
          "wal.append",
          "durable.checkpoint.commit",
      },
      "sharded");
}

}  // namespace
}  // namespace stkde
