#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace stkde::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MatchesNaiveComputation) {
  const std::vector<double> xs = {1.5, -2.0, 3.25, 0.0, 7.5, -1.25};
  RunningStats s;
  double sum = 0.0;
  for (const double x : xs) {
    s.add(x);
    sum += x;
  }
  const double mean = sum / xs.size();
  double var = 0.0;
  for (const double x : xs) var += (x - mean) * (x - mean);
  var /= (xs.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-12);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), -2.0);
  EXPECT_DOUBLE_EQ(s.max(), 7.5);
  EXPECT_NEAR(s.sum(), sum, 1e-12);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  Xoshiro256 rng(3);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(2.0, 5.0);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  RunningStats e2;
  e2.merge(a);
  EXPECT_EQ(e2.count(), 2u);
  EXPECT_NEAR(e2.mean(), 1.5, 1e-12);
}

TEST(LoadBalance, UniformLoadsAreBalanced) {
  const LoadBalance lb = load_balance(std::vector<double>{4.0, 4.0, 4.0});
  EXPECT_DOUBLE_EQ(lb.imbalance, 1.0);
  EXPECT_EQ(lb.nonzero, 3u);
}

TEST(LoadBalance, SingleHotBucketShowsMaxOverMean) {
  const LoadBalance lb = load_balance(std::vector<double>{0.0, 0.0, 0.0, 8.0});
  EXPECT_DOUBLE_EQ(lb.mean, 2.0);
  EXPECT_DOUBLE_EQ(lb.max, 8.0);
  EXPECT_DOUBLE_EQ(lb.imbalance, 4.0);
  EXPECT_EQ(lb.nonzero, 1u);
}

TEST(LoadBalance, EmptyAndAllZeroAreDefined) {
  EXPECT_DOUBLE_EQ(load_balance(std::vector<double>{}).imbalance, 1.0);
  EXPECT_DOUBLE_EQ(load_balance(std::vector<double>{0.0, 0.0}).imbalance, 1.0);
}

TEST(LoadBalance, IntegerOverloadMatchesDouble) {
  const std::vector<std::uint64_t> li = {1, 2, 3};
  const std::vector<double> ld = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(load_balance(li).imbalance, load_balance(ld).imbalance);
}

TEST(Histogram, CountsFallIntoCorrectBins) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(9.5);   // bin 4
  h.add(5.0);   // bin 2
  EXPECT_EQ(h.bins()[0], 1u);
  EXPECT_EQ(h.bins()[2], 1u);
  EXPECT_EQ(h.bins()[4], 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, OutOfRangeClampsToEdges) {
  Histogram h(0.0, 1.0, 4);
  h.add(-100.0);
  h.add(100.0);
  EXPECT_EQ(h.bins().front(), 1u);
  EXPECT_EQ(h.bins().back(), 1u);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
}

}  // namespace
}  // namespace stkde::util
