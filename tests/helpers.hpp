#pragma once
/// Shared fixtures for the stkde test suite.

#include <cstdint>

#include "core/estimator.hpp"
#include "data/generator.hpp"
#include "geom/domain.hpp"
#include "util/memory.hpp"

namespace stkde::testing {

/// A small instance every algorithm (including VB) can run in milliseconds.
struct TinyInstance {
  DomainSpec domain;
  PointSet points;
  Params params;
};

/// Clustered tiny instance: dims ~ (24, 20, 16), n points, bandwidths in
/// voxels (sres = tres = 1).
TinyInstance make_tiny(std::size_t n, std::int32_t Hs, std::int32_t Ht,
                       std::uint64_t seed = 1);

/// Relative max-abs-diff comparison threshold for float grids produced by
/// different accumulation orders.
double grid_tolerance(const DensityGrid& reference);

/// RAII override of the process memory budget (restores on destruction).
class ScopedMemoryBudget {
 public:
  explicit ScopedMemoryBudget(std::uint64_t bytes)
      : saved_(util::MemoryBudget::instance().limit()) {
    util::MemoryBudget::instance().set_limit(bytes);
  }
  ~ScopedMemoryBudget() { util::MemoryBudget::instance().set_limit(saved_); }
  ScopedMemoryBudget(const ScopedMemoryBudget&) = delete;
  ScopedMemoryBudget& operator=(const ScopedMemoryBudget&) = delete;

 private:
  std::uint64_t saved_;
};

}  // namespace stkde::testing
