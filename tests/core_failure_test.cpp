// Failure injection: the paper's OOM cases (PB-SYM-DR on Flu Hr, PB-SYM-PD-REP
// at small decompositions) must surface as typed exceptions before any large
// allocation, and invalid inputs must be rejected loudly.

#include <gtest/gtest.h>

#include "helpers.hpp"

namespace stkde {
namespace {

using testing::ScopedMemoryBudget;
using testing::TinyInstance;
using testing::make_tiny;

TEST(FailureInjection, DrThrowsWhenReplicasExceedBudget) {
  TinyInstance t = make_tiny(50, 2, 1);
  t.params.threads = 8;
  // Grid is 24*20*16*4B = 30 KiB; 9 copies need ~276 KiB. Budget: 100 KiB.
  ScopedMemoryBudget guard(100 * 1024);
  EXPECT_THROW(estimate(t.points, t.domain, t.params, Algorithm::kPBSymDR),
               util::MemoryBudgetExceeded);
}

TEST(FailureInjection, DrSucceedsWithFewerThreadsUnderSameBudget) {
  // The paper's Fig. 8: Flu Hr completes at low thread counts and OOMs at
  // 8/16 threads. Same budget, fewer replicas -> fits.
  TinyInstance t = make_tiny(50, 2, 1);
  ScopedMemoryBudget guard(100 * 1024);
  t.params.threads = 2;
  EXPECT_NO_THROW(estimate(t.points, t.domain, t.params, Algorithm::kPBSymDR));
  t.params.threads = 8;
  EXPECT_THROW(estimate(t.points, t.domain, t.params, Algorithm::kPBSymDR),
               util::MemoryBudgetExceeded);
}

TEST(FailureInjection, SequentialAlgorithmsUnaffectedByReplicaBudget) {
  TinyInstance t = make_tiny(50, 2, 1);
  ScopedMemoryBudget guard(100 * 1024);
  EXPECT_NO_THROW(estimate(t.points, t.domain, t.params, Algorithm::kPBSym));
}

TEST(FailureInjection, RepOomsAtCoarseDecompositionWithHotSpot) {
  // 1x1x1 decomposition: the single subdomain's halo is the whole grid, so
  // replication degenerates to DR and the buffers blow the budget
  // (paper Fig. 14: "Flu Hr-Lb and Flu Hr-Hb run out of memory for small
  // decomposition").
  TinyInstance t = make_tiny(1, 2, 1);
  t.points = data::generate_degenerate(t.domain, 5000);
  t.params.decomp = {1, 1, 1};
  t.params.threads = 8;
  // Grid is 30 KiB; at 1x1x1 every replica buffer is another whole grid.
  ScopedMemoryBudget guard(120 * 1024);
  EXPECT_THROW(estimate(t.points, t.domain, t.params, Algorithm::kPBSymPDRep),
               util::MemoryBudgetExceeded);
}

TEST(FailureInjection, RepFitsAtFinerDecompositionUnderSameBudget) {
  TinyInstance t = make_tiny(1, 2, 1);
  t.points = data::generate_degenerate(t.domain, 5000);
  t.params.threads = 8;
  ScopedMemoryBudget guard(120 * 1024);
  t.params.decomp = {4, 4, 4};  // halo buffers are small slices now
  EXPECT_NO_THROW(
      estimate(t.points, t.domain, t.params, Algorithm::kPBSymPDRep));
}

TEST(FailureInjection, GridAllocationItselfRespectsBudget) {
  TinyInstance t = make_tiny(10, 2, 1);
  ScopedMemoryBudget guard(1024);  // smaller than the grid
  EXPECT_THROW(estimate(t.points, t.domain, t.params, Algorithm::kPB),
               util::MemoryBudgetExceeded);
}

TEST(InvalidInput, NonPositiveBandwidthsRejected) {
  TinyInstance t = make_tiny(10, 2, 1);
  t.params.hs = 0.0;
  EXPECT_THROW(estimate(t.points, t.domain, t.params, Algorithm::kPBSym),
               std::invalid_argument);
  t.params.hs = 2.0;
  t.params.ht = -1.0;
  EXPECT_THROW(estimate(t.points, t.domain, t.params, Algorithm::kPBSym),
               std::invalid_argument);
}

TEST(InvalidInput, BadDecompositionRejected) {
  TinyInstance t = make_tiny(10, 2, 1);
  t.params.decomp = {0, 1, 1};
  EXPECT_THROW(estimate(t.points, t.domain, t.params, Algorithm::kPBSymDD),
               std::invalid_argument);
}

TEST(InvalidInput, NonFiniteDomainRejected) {
  TinyInstance t = make_tiny(10, 2, 1);
  t.domain.gx = std::numeric_limits<double>::infinity();
  EXPECT_THROW(estimate(t.points, t.domain, t.params, Algorithm::kPBSym),
               std::invalid_argument);
}

TEST(InvalidInput, BadReplicationParamsRejected) {
  TinyInstance t = make_tiny(10, 2, 1);
  t.params.rep.max_factor = 0;
  EXPECT_THROW(estimate(t.points, t.domain, t.params, Algorithm::kPBSymPDRep),
               std::invalid_argument);
}

TEST(FailureRecovery, OomLeavesBudgetReusable) {
  TinyInstance t = make_tiny(20, 2, 1);
  {
    ScopedMemoryBudget guard(100 * 1024);
    t.params.threads = 8;
    EXPECT_THROW(estimate(t.points, t.domain, t.params, Algorithm::kPBSymDR),
                 util::MemoryBudgetExceeded);
    // Within the same budget, a feasible strategy still works afterwards.
    EXPECT_NO_THROW(estimate(t.points, t.domain, t.params, Algorithm::kPBSym));
  }
  // And outside the guard everything is back to normal.
  EXPECT_NO_THROW(estimate(t.points, t.domain, t.params, Algorithm::kPBSymDR));
}

}  // namespace
}  // namespace stkde
