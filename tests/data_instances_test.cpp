#include "data/instances.hpp"

#include <gtest/gtest.h>

#include "util/memory.hpp"

namespace stkde::data {
namespace {

TEST(PaperCatalog, HasAll21Table2Instances) {
  EXPECT_EQ(paper_catalog().size(), 21u);
}

TEST(PaperCatalog, SpotCheckTable2Rows) {
  const auto& dengue = paper_instance("Dengue_Hr-VHb");
  EXPECT_EQ(dengue.n, 11056u);
  EXPECT_EQ(dengue.dims, (GridDims{294, 386, 728}));
  EXPECT_EQ(dengue.Hs, 50);
  EXPECT_EQ(dengue.Ht, 14);

  const auto& pollen = paper_instance("PollenUS_VHr-Lb");
  EXPECT_EQ(pollen.n, 588189u);
  EXPECT_EQ(pollen.dims, (GridDims{6501, 3001, 84}));
  EXPECT_EQ(pollen.Hs, 100);

  const auto& ebird = paper_instance("eBird_Hr-Hb");
  EXPECT_EQ(ebird.n, 291990435u);
  EXPECT_EQ(ebird.Hs, 30);
  EXPECT_EQ(ebird.Ht, 5);
}

TEST(PaperCatalog, GridBytesMatchTable2SizeColumn) {
  // Table 2 lists 79MB / 315MB / 20260MB / 59570MB etc. at 4 B/voxel. The
  // paper's column rounds inconsistently (+-3 MiB), hence proximity checks.
  EXPECT_EQ(util::to_mib(paper_instance("Dengue_Lr-Lb").grid_bytes()), 79u);
  EXPECT_EQ(util::to_mib(paper_instance("Dengue_Hr-Lb").grid_bytes()), 315u);
  EXPECT_NEAR(
      static_cast<double>(util::to_mib(paper_instance("Flu_Hr-Lb").grid_bytes())),
      20260.0, 3.0);
  EXPECT_NEAR(static_cast<double>(
                  util::to_mib(paper_instance("eBird_Hr-Lb").grid_bytes())),
              59570.0, 3.0);
}

TEST(PaperCatalog, UnknownNameThrows) {
  EXPECT_THROW((void)paper_instance("Dengue_Nope"), std::invalid_argument);
}

TEST(PaperCatalog, DatasetNamesEmbeddedInInstanceNames) {
  for (const auto& s : paper_catalog())
    EXPECT_EQ(s.name.rfind(to_string(s.dataset) + "_", 0), 0u) << s.name;
}

TEST(ScaleInstance, SmallInstancesPassThrough) {
  const auto& small = paper_instance("PollenUS_Lr-Lb");  // 0.7M voxels
  const InstanceSpec scaled = scale_instance(small, ScaleBudget{});
  EXPECT_EQ(scaled.dims, small.dims);
  EXPECT_EQ(scaled.Hs, small.Hs);
  EXPECT_EQ(scaled.Ht, small.Ht);
}

TEST(ScaleInstance, LargeGridsShrinkToVoxelCap) {
  const ScaleBudget b{16'000'000, 2.0e8};
  for (const auto& s : paper_catalog()) {
    const InstanceSpec scaled = scale_instance(s, b);
    // cbrt rounding can land slightly above the cap; allow 30% slack.
    EXPECT_LE(scaled.dims.voxels(),
              static_cast<std::int64_t>(b.voxel_cap * 1.3))
        << s.name;
    EXPECT_GE(scaled.Hs, 1);
    EXPECT_GE(scaled.Ht, 1);
  }
}

TEST(ScaleInstance, WorkCapBoundsKernelWork) {
  const ScaleBudget b{16'000'000, 2.0e8};
  for (const auto& s : paper_catalog()) {
    const InstanceSpec scaled = scale_instance(s, b);
    EXPECT_LE(scaled.kernel_work(), b.work_cap * 1.01) << s.name;
    EXPECT_GE(scaled.n, 1u);
  }
}

TEST(ScaleInstance, PreservesRegimeOrdering) {
  // Flu Hr is the init-dominated extreme; eBird Lr is compute-dense. The
  // work/voxel ratio ordering must survive scaling.
  const ScaleBudget b{16'000'000, 2.0e8};
  const auto flu = scale_instance(paper_instance("Flu_Hr-Lb"), b);
  const auto ebird = scale_instance(paper_instance("eBird_Lr-Hb"), b);
  const double flu_ratio =
      flu.kernel_work() / static_cast<double>(flu.dims.voxels());
  const double ebird_ratio =
      ebird.kernel_work() / static_cast<double>(ebird.dims.voxels());
  EXPECT_LT(flu_ratio, ebird_ratio);
}

TEST(LaptopCatalog, KeepsNamesAndOrder) {
  const auto lap = laptop_catalog();
  ASSERT_EQ(lap.size(), paper_catalog().size());
  for (std::size_t i = 0; i < lap.size(); ++i)
    EXPECT_EQ(lap[i].name, paper_catalog()[i].name);
}

TEST(Materialize, GeneratesExactlyNPoints) {
  InstanceSpec spec = paper_instance("PollenUS_Lr-Lb");
  spec.n = 5000;  // shrink for test speed
  const Instance inst = materialize(spec);
  EXPECT_EQ(inst.points.size(), 5000u);
  EXPECT_EQ(inst.domain.dims(), spec.dims);
  EXPECT_DOUBLE_EQ(inst.hs, static_cast<double>(spec.Hs));
  EXPECT_DOUBLE_EQ(inst.ht, static_cast<double>(spec.Ht));
}

TEST(Materialize, DomainUnitsAreVoxels) {
  InstanceSpec spec = paper_instance("Dengue_Lr-Lb");
  spec.n = 10;
  const Instance inst = materialize(spec);
  EXPECT_DOUBLE_EQ(inst.domain.sres, 1.0);
  EXPECT_DOUBLE_EQ(inst.domain.tres, 1.0);
  EXPECT_EQ(inst.domain.spatial_bandwidth_voxels(inst.hs), spec.Hs);
  EXPECT_EQ(inst.domain.temporal_bandwidth_voxels(inst.ht), spec.Ht);
}

TEST(Materialize, DeterministicPerName) {
  InstanceSpec spec = paper_instance("Flu_Lr-Lb");
  spec.n = 100;
  const Instance a = materialize(spec);
  const Instance b = materialize(spec);
  for (std::size_t i = 0; i < a.points.size(); ++i)
    EXPECT_EQ(a.points[i], b.points[i]);
}

TEST(Materialize, DifferentInstancesGetDifferentPoints) {
  InstanceSpec a = paper_instance("Flu_Lr-Lb");
  InstanceSpec b = paper_instance("Flu_Lr-Hb");
  a.n = b.n = 50;
  const Instance ia = materialize(a);
  const Instance ib = materialize(b);
  int same = 0;
  for (std::size_t i = 0; i < ia.points.size(); ++i)
    if (ia.points[i] == ib.points[i]) ++same;
  EXPECT_LT(same, 5);
}

TEST(KernelWork, FormulaMatches) {
  InstanceSpec s;
  s.n = 10;
  s.Hs = 2;
  s.Ht = 1;
  EXPECT_DOUBLE_EQ(s.kernel_work(), 10.0 * 25.0 * 3.0);
}

}  // namespace
}  // namespace stkde::data
