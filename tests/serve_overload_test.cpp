/// Overload-hardening battery (docs/SERVE.md "Overload policy"): the
/// injectable clock, token bucket, and decorrelated backoff primitives;
/// the admission controller's budget/deadline/session/stall policy; the
/// request executor end to end — shed-at-budget with retry-after hints,
/// deadline re-checks at dequeue, mid-grid cancellation, graceful drain,
/// the writer-stall circuit breaker — and, in failpoint builds, the
/// serve.admit / serve.execute / serve.shed chaos sites. Every test is
/// deterministic: time moves only when the test moves it.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "grid/dense_grid.hpp"
#include "sched/thread_pool.hpp"
#include "serve/admission.hpp"
#include "serve/client_retry.hpp"
#include "serve/executor.hpp"
#include "serve/snapshot_registry.hpp"
#include "serve/wire.hpp"
#include "util/backoff.hpp"
#include "util/clock.hpp"
#include "util/failpoint.hpp"
#include "util/token_bucket.hpp"

namespace stkde {
namespace {

namespace fp = util::failpoint;
namespace wire = serve::wire;
using std::chrono::milliseconds;

DomainSpec small_domain(double gx = 16, double gy = 16, double gt = 8) {
  DomainSpec d;
  d.x0 = d.y0 = d.t0 = 0.0;
  d.gx = gx;
  d.gy = gy;
  d.gt = gt;
  d.sres = 1.0;
  d.tres = 1.0;
  return d;
}

void publish_uniform(serve::SnapshotRegistry& reg, const DomainSpec& dom,
                     std::uint64_t version, float value = 0.25f) {
  auto grid = std::make_shared<DensityGrid>(dom.dims());
  grid->fill(value);
  reg.publish(serve::Snapshot{std::move(grid), 100, version});
}

wire::Frame frame_of(const wire::QueryMessage& q) { return wire::encode(q); }

/// Decode a response frame, failing the test on undecodable bytes.
wire::ResponseMessage must_decode(const wire::Frame& f) {
  auto r = wire::decode_response(f.data(), f.size());
  EXPECT_TRUE(r.has_value()) << "undecodable response frame";
  if (!r) return wire::ResponseMessage{wire::ErrorResponse{}};
  return std::move(*r);
}

/// True when \p f decodes to a non-error response.
bool is_success(const wire::Frame& f) {
  const wire::ResponseMessage resp = must_decode(f);
  return std::get_if<wire::ErrorResponse>(&resp) == nullptr;
}

/// The ErrorResponse inside \p f, which must carry \p code.
wire::ErrorResponse expect_error(const wire::Frame& f, wire::ErrorCode code) {
  const wire::ResponseMessage resp = must_decode(f);
  const auto* err = std::get_if<wire::ErrorResponse>(&resp);
  if (err == nullptr) {
    ADD_FAILURE() << "expected an error frame (code "
                  << static_cast<int>(code) << ")";
    return {};
  }
  EXPECT_EQ(err->code, code) << err->message;
  return *err;
}

/// Parks every pool worker on a gate until release(); lets tests fill
/// admission budgets deterministically (granted slots cannot finish while
/// the gate is closed).
class PoolBlocker {
 public:
  explicit PoolBlocker(sched::ThreadPool& pool) {
    for (int i = 0; i < pool.size(); ++i)
      pool.submit([this] {
        std::unique_lock<std::mutex> lk(mu_);
        ++held_;
        cv_.notify_all();
        while (!released_) cv_.wait(lk);
      });
    std::unique_lock<std::mutex> lk(mu_);
    const int want = pool.size();
    while (held_ != want) cv_.wait(lk);
  }

  void release() {
    std::lock_guard<std::mutex> lk(mu_);
    released_ = true;
    cv_.notify_all();
  }

  ~PoolBlocker() { release(); }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int held_ = 0;
  bool released_ = false;
};

// ---------------------------------------------------------------------------
// Clock / token bucket / backoff primitives

TEST(ManualClock, MovesOnlyWhenTold) {
  util::ManualClock clock;
  const auto t0 = clock.now();
  EXPECT_EQ(clock.now(), t0);
  clock.advance(milliseconds{250});
  EXPECT_EQ(clock.now() - t0, milliseconds{250});
  clock.set(t0);
  EXPECT_EQ(clock.now(), t0);
}

TEST(TokenBucket, RefillsContinuouslyAndReportsRetryAfter) {
  util::ManualClock clock;
  util::TokenBucket bucket(/*rate=*/10.0, /*burst=*/2.0, clock.now());
  EXPECT_TRUE(bucket.try_take(clock.now()));
  EXPECT_TRUE(bucket.try_take(clock.now()));
  EXPECT_FALSE(bucket.try_take(clock.now())) << "burst exhausted";
  // Dry: one token accrues in 100 ms at 10/s; the hint rounds up.
  const milliseconds hint = bucket.retry_after(clock.now());
  EXPECT_GE(hint, milliseconds{1});
  EXPECT_LE(hint, milliseconds{101});
  clock.advance(milliseconds{50});
  EXPECT_FALSE(bucket.try_take(clock.now())) << "half a token is not one";
  clock.advance(milliseconds{60});
  EXPECT_TRUE(bucket.try_take(clock.now()));
  // Refill never banks past burst.
  clock.advance(std::chrono::seconds{60});
  EXPECT_TRUE(bucket.try_take(clock.now()));
  EXPECT_TRUE(bucket.try_take(clock.now()));
  EXPECT_FALSE(bucket.try_take(clock.now()));
}

TEST(TokenBucket, NonPositiveRateDisablesTheLimiter) {
  util::ManualClock clock;
  util::TokenBucket bucket(/*rate=*/0.0, /*burst=*/1.0, clock.now());
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(bucket.try_take(clock.now()));
  EXPECT_EQ(bucket.retry_after(clock.now()), milliseconds{0});
}

TEST(DecorrelatedBackoff, DeterministicBoundedAndResettable) {
  const milliseconds base{2};
  const milliseconds cap{64};
  util::DecorrelatedBackoff a(base, cap, /*seed=*/42);
  util::DecorrelatedBackoff b(base, cap, /*seed=*/42);
  std::vector<milliseconds> first_run;
  for (int i = 0; i < 20; ++i) {
    const milliseconds d = a.next();
    EXPECT_EQ(d, b.next()) << "same seed, same schedule";
    EXPECT_GE(d, base);
    EXPECT_LE(d, cap);
    first_run.push_back(d);
  }
  EXPECT_EQ(first_run.front(), base) << "first retry is eager";
  // reset() restarts the *pressure schedule* (eager base first, growth
  // re-capped), but deliberately not the RNG stream: two bursts from one
  // client must not jitter identically.
  a.reset();
  EXPECT_EQ(a.next(), base);
  for (int i = 0; i < 20; ++i) {
    const milliseconds d = a.next();
    EXPECT_GE(d, base);
    EXPECT_LE(d, cap);
  }
  // A different seed diverges somewhere in the schedule.
  util::DecorrelatedBackoff c(base, cap, /*seed=*/43);
  bool diverged = false;
  for (int i = 0; i < 20; ++i) diverged |= (c.next() != first_run[i]);
  EXPECT_TRUE(diverged);
}

// ---------------------------------------------------------------------------
// Cost classification

TEST(CostClass, ClassifiesEveryQueryFamily) {
  using serve::CostClass;
  EXPECT_EQ(serve::classify(wire::DensityAtQuery{{1, 2, 3}}),
            CostClass::kCheap);
  EXPECT_EQ(serve::classify(wire::HealthQuery{}), CostClass::kCheap);
  EXPECT_EQ(serve::classify(wire::SliceQuery{2}), CostClass::kMedium);
  EXPECT_EQ(serve::classify(
                wire::RegionQuery{Extent3{0, 4, 0, 4, 0, 4},
                                  wire::RegionOp::kSum}),
            CostClass::kMedium);
  EXPECT_EQ(serve::classify(wire::RegionGridQuery{Extent3{0, 4, 0, 4, 0, 4}}),
            CostClass::kExpensive);
  EXPECT_EQ(serve::classify(wire::HotspotsQuery{4, 0.9}),
            CostClass::kExpensive);
  // Cheap work preempts expensive work at the pool, never the reverse.
  EXPECT_EQ(serve::priority_of(CostClass::kCheap), sched::Priority::kHigh);
  EXPECT_EQ(serve::priority_of(CostClass::kMedium), sched::Priority::kNormal);
  EXPECT_EQ(serve::priority_of(CostClass::kExpensive), sched::Priority::kLow);
}

// ---------------------------------------------------------------------------
// AdmissionController policy (driven directly, ManualClock)

constexpr auto kNoDeadline = milliseconds::max();

TEST(Admission, BudgetsRunThenQueueThenShed) {
  using serve::CostClass;
  util::ManualClock clock;
  serve::AdmissionConfig cfg;
  cfg.budgets[0] = serve::ClassBudget{1, 1};
  serve::AdmissionController adm(cfg, &clock);

  const auto d1 = adm.offer(CostClass::kCheap, 0, kNoDeadline, false);
  EXPECT_EQ(d1.verdict, serve::AdmissionDecision::Verdict::kRun);
  EXPECT_EQ(adm.running(CostClass::kCheap), 1);

  const auto d2 = adm.offer(CostClass::kCheap, 0, kNoDeadline, false);
  EXPECT_EQ(d2.verdict, serve::AdmissionDecision::Verdict::kQueue);
  EXPECT_EQ(adm.queued(CostClass::kCheap), 1);

  const auto d3 = adm.offer(CostClass::kCheap, 0, kNoDeadline, false);
  EXPECT_EQ(d3.verdict, serve::AdmissionDecision::Verdict::kShed);
  EXPECT_GE(d3.retry_after, milliseconds{1}) << "never advise instant retry";
  EXPECT_STREQ(d3.reason, "class queue full");

  // The freed slot goes to the queued request; the books balance.
  adm.on_finish(CostClass::kCheap, 0.1);
  adm.on_dequeue_run(CostClass::kCheap);
  EXPECT_EQ(adm.running(CostClass::kCheap), 1);
  EXPECT_EQ(adm.queued(CostClass::kCheap), 0);
  adm.on_finish(CostClass::kCheap, 0.1);
  EXPECT_EQ(adm.running(CostClass::kCheap), 0);

  const serve::AdmissionStats& st = adm.stats();
  EXPECT_EQ(st.admitted_run, 1u);
  EXPECT_EQ(st.admitted_queue, 1u);
  EXPECT_EQ(st.shed_budget, 1u);
  EXPECT_EQ(st.shed_total(), 1u);
}

TEST(Admission, QueueWaitEstimateExceedingDeadlineShedsEarly) {
  using serve::CostClass;
  util::ManualClock clock;
  serve::AdmissionConfig cfg;
  cfg.budgets[2] = serve::ClassBudget{1, 8};
  cfg.initial_cost_ms[2] = 10.0;  // expensive EWMA prior: 10 ms
  serve::AdmissionController adm(cfg, &clock);

  ASSERT_EQ(adm.offer(CostClass::kExpensive, 0, kNoDeadline, false).verdict,
            serve::AdmissionDecision::Verdict::kRun);
  // Queueing would wait ~10 ms; a 2 ms budget cannot cover it — reject
  // *now*, not after the request dies in the queue.
  const auto d = adm.offer(CostClass::kExpensive, 0, milliseconds{2}, false);
  EXPECT_EQ(d.verdict, serve::AdmissionDecision::Verdict::kShed);
  EXPECT_STREQ(d.reason, "queue wait estimate exceeds request deadline");
  // A deadline that covers the wait queues fine.
  EXPECT_EQ(adm.offer(CostClass::kExpensive, 0, milliseconds{5000}, false)
                .verdict,
            serve::AdmissionDecision::Verdict::kQueue);
  EXPECT_EQ(adm.stats().shed_deadline, 1u);
}

TEST(Admission, PerSessionBucketMetersEachKeySeparately) {
  using serve::CostClass;
  util::ManualClock clock;
  serve::AdmissionConfig cfg;
  cfg.session_rate = 10.0;
  cfg.session_burst = 2.0;
  serve::AdmissionController adm(cfg, &clock);

  const auto kRun = serve::AdmissionDecision::Verdict::kRun;
  EXPECT_EQ(adm.offer(CostClass::kCheap, 7, kNoDeadline, false).verdict, kRun);
  EXPECT_EQ(adm.offer(CostClass::kCheap, 7, kNoDeadline, false).verdict, kRun);
  const auto dry = adm.offer(CostClass::kCheap, 7, kNoDeadline, false);
  EXPECT_EQ(dry.verdict, serve::AdmissionDecision::Verdict::kShed);
  EXPECT_STREQ(dry.reason, "session rate limit exceeded");
  EXPECT_GE(dry.retry_after, milliseconds{1});

  // A different key has its own bucket; key 0 is anonymous and unmetered.
  EXPECT_EQ(adm.offer(CostClass::kCheap, 8, kNoDeadline, false).verdict, kRun);
  EXPECT_EQ(adm.offer(CostClass::kCheap, 0, kNoDeadline, false).verdict, kRun);

  // The dry bucket refills with the (manual) clock. Free a slot first:
  // the four admits above hold the whole cheap concurrency budget.
  adm.on_finish(CostClass::kCheap, 0.1);
  clock.advance(milliseconds{150});
  EXPECT_EQ(adm.offer(CostClass::kCheap, 7, kNoDeadline, false).verdict, kRun);
  EXPECT_EQ(adm.stats().shed_session, 1u);
}

TEST(Admission, WriterStallShedsOnlyExpensiveClasses) {
  using serve::CostClass;
  util::ManualClock clock;
  serve::AdmissionConfig cfg;
  cfg.stall_after = milliseconds{100};
  serve::AdmissionController adm(cfg, &clock);

  const auto stalled =
      adm.offer(CostClass::kExpensive, 0, kNoDeadline, /*writer_stalled=*/true);
  EXPECT_EQ(stalled.verdict, serve::AdmissionDecision::Verdict::kShed);
  EXPECT_STREQ(stalled.reason, "writer stalled; expensive queries shed");
  // Cheap and medium reads keep serving from last-good pins.
  EXPECT_EQ(adm.offer(CostClass::kCheap, 0, kNoDeadline, true).verdict,
            serve::AdmissionDecision::Verdict::kRun);
  EXPECT_EQ(adm.offer(CostClass::kMedium, 0, kNoDeadline, true).verdict,
            serve::AdmissionDecision::Verdict::kRun);
  EXPECT_EQ(adm.stats().shed_stalled, 1u);
}

// ---------------------------------------------------------------------------
// Client retry policy

TEST(ClientRetry, HonorsServerHintAsAFloor) {
  serve::ClientRetry::Config cfg;
  cfg.base = milliseconds{1};
  cfg.cap = milliseconds{8};
  serve::ClientRetry retry{cfg};
  const auto d = retry.on_response(wire::ResponseMessage{
      wire::ErrorResponse{wire::ErrorCode::kOverloaded, 500, "shed"}});
  EXPECT_TRUE(d.retry);
  EXPECT_GE(d.delay, milliseconds{500}) << "server hint is the floor";
}

TEST(ClientRetry, OnlyBackpressureCodesAreRetryable) {
  serve::ClientRetry retry;
  EXPECT_TRUE(retry
                  .on_response(wire::ResponseMessage{wire::ErrorResponse{
                      wire::ErrorCode::kUnavailable, "not yet"}})
                  .retry);
  for (const wire::ErrorCode code :
       {wire::ErrorCode::kMalformed, wire::ErrorCode::kBadArgument,
        wire::ErrorCode::kInternal, wire::ErrorCode::kDeadlineExceeded,
        wire::ErrorCode::kShuttingDown}) {
    EXPECT_FALSE(
        retry.on_response(wire::ResponseMessage{wire::ErrorResponse{code, "x"}})
            .retry)
        << static_cast<int>(code);
  }
}

TEST(ClientRetry, GivesUpAfterMaxAttemptsAndResetsOnSuccess) {
  serve::ClientRetry::Config cfg;
  cfg.max_attempts = 3;
  serve::ClientRetry retry{cfg};
  const wire::ResponseMessage shed{
      wire::ErrorResponse{wire::ErrorCode::kOverloaded, 1, "shed"}};
  EXPECT_TRUE(retry.on_response(shed).retry);
  EXPECT_TRUE(retry.on_response(shed).retry);
  EXPECT_FALSE(retry.on_response(shed).retry) << "attempt budget spent";
  // A success resets the schedule: the next failure retries again.
  (void)retry.on_response(
      wire::ResponseMessage{wire::DensityAtResponse{1, 0.5f}});
  EXPECT_EQ(retry.attempts(), 0);
  EXPECT_TRUE(retry.on_response(shed).retry);
}

// ---------------------------------------------------------------------------
// RequestExecutor end to end

TEST(Executor, ServesEveryQueryFamilyWhenUnloaded) {
  const DomainSpec dom = small_domain();
  serve::SnapshotRegistry reg(dom);
  publish_uniform(reg, dom, 1);
  sched::ThreadPool pool(2);
  serve::RequestExecutor exec(reg, pool);

  const std::vector<wire::QueryMessage> queries = {
      wire::DensityAtQuery{{5, 5, 5}},
      wire::SliceQuery{2},
      wire::RegionQuery{Extent3{0, 8, 0, 8, 0, 4}, wire::RegionOp::kSum},
      wire::RegionGridQuery{Extent3{0, 8, 0, 8, 0, 4}},
      wire::HotspotsQuery{4, 0.9},
      wire::HealthQuery{},
  };
  for (const auto& q : queries) {
    const wire::Frame f = frame_of(q);
    const wire::Frame resp = exec.submit(f.data(), f.size()).get();
    const wire::ResponseMessage decoded = must_decode(resp);
    EXPECT_EQ(std::get_if<wire::ErrorResponse>(&decoded), nullptr)
        << "query family " << decoded.index();
  }
  exec.drain();  // counters land after the promise resolves; drain orders them
  const serve::ExecutorStats st = exec.stats();
  EXPECT_EQ(st.submitted, queries.size());
  EXPECT_EQ(st.health_inline, 1u);
  EXPECT_EQ(st.completed, queries.size() - 1);
  EXPECT_EQ(st.shed, 0u);
}

TEST(Executor, MalformedFramesAnswerWithoutTouchingAdmission) {
  const DomainSpec dom = small_domain();
  serve::SnapshotRegistry reg(dom);
  sched::ThreadPool pool(1);
  serve::RequestExecutor exec(reg, pool);

  const std::vector<std::uint8_t> junk = {0xDE, 0xAD, 0xBE, 0xEF, 0x00};
  const wire::Frame resp = exec.submit(junk.data(), junk.size()).get();
  (void)expect_error(resp, wire::ErrorCode::kMalformed);
  const serve::ExecutorStats st = exec.stats();
  EXPECT_EQ(st.malformed, 1u);
  EXPECT_EQ(st.admission.admitted_run + st.admission.admitted_queue +
                st.admission.shed_total(),
            0u);
}

TEST(Executor, UnavailableBeforeFirstPublishIsTyped) {
  const DomainSpec dom = small_domain();
  serve::SnapshotRegistry reg(dom);  // never published
  sched::ThreadPool pool(1);
  serve::RequestExecutor exec(reg, pool);
  const wire::Frame f = frame_of(wire::DensityAtQuery{{1, 1, 1}});
  (void)expect_error(exec.submit(f.data(), f.size()).get(),
                     wire::ErrorCode::kUnavailable);
}

TEST(Executor, ShedsAtBudgetWithRetryAfterHint) {
  const DomainSpec dom = small_domain();
  serve::SnapshotRegistry reg(dom);
  publish_uniform(reg, dom, 1);
  sched::ThreadPool pool(2);
  serve::ExecutorConfig cfg;
  cfg.admission.budgets[0] = serve::ClassBudget{1, 1};
  serve::RequestExecutor exec(reg, pool, cfg);

  PoolBlocker gate(pool);  // granted slots cannot finish while closed
  const wire::Frame f = frame_of(wire::DensityAtQuery{{5, 5, 5}});
  auto running = exec.submit(f.data(), f.size());   // fills concurrency 1
  auto queued = exec.submit(f.data(), f.size());    // fills queue depth 1
  auto rejected = exec.submit(f.data(), f.size());  // must shed NOW

  // The shed answer arrives while the budget-holders are still stuck: an
  // early typed rejection, not a queued death.
  ASSERT_EQ(rejected.wait_for(std::chrono::seconds{10}),
            std::future_status::ready);
  const wire::ErrorResponse err =
      expect_error(rejected.get(), wire::ErrorCode::kOverloaded);
  EXPECT_GE(err.retry_after_ms, 1u);
  EXPECT_STREQ(err.message.c_str(), "class queue full");

  gate.release();
  EXPECT_TRUE(is_success(running.get()))
      << "the admitted request still completes";
  EXPECT_TRUE(is_success(queued.get()))
      << "the queued request is granted the freed slot";

  exec.drain();
  const serve::ExecutorStats st = exec.stats();
  EXPECT_EQ(st.shed, 1u);
  EXPECT_EQ(st.completed, 2u);
  EXPECT_EQ(st.admission.shed_budget, 1u);
  EXPECT_EQ(st.queue_high_water, 1u);
}

TEST(Executor, DeadlineExpiredWhileQueuedNeverRuns) {
  const DomainSpec dom = small_domain();
  serve::SnapshotRegistry reg(dom);
  publish_uniform(reg, dom, 1);
  sched::ThreadPool pool(2);
  util::ManualClock clock;
  serve::ExecutorConfig cfg;
  cfg.admission.budgets[0] = serve::ClassBudget{1, 4};
  cfg.session.request_deadline = milliseconds{100};
  serve::RequestExecutor exec(reg, pool, cfg, &clock);

  PoolBlocker gate(pool);
  const wire::Frame f = frame_of(wire::DensityAtQuery{{5, 5, 5}});
  auto granted = exec.submit(f.data(), f.size());
  auto queued = exec.submit(f.data(), f.size());

  // Both requests sit behind the gate while their whole deadline elapses.
  clock.advance(milliseconds{200});
  gate.release();

  (void)expect_error(granted.get(), wire::ErrorCode::kDeadlineExceeded);
  (void)expect_error(queued.get(), wire::ErrorCode::kDeadlineExceeded);
  exec.drain();
  const serve::ExecutorStats st = exec.stats();
  EXPECT_EQ(st.expired_at_dequeue, 2u);
  EXPECT_EQ(st.completed, 0u) << "an expired request is never served";
}

/// A clock that advances a fixed step on every read: deadlines then expire
/// after a deterministic number of observations, which makes "the deadline
/// passed mid-execution" a reproducible event inside one region-grid scan.
class SteppingClock final : public util::Clock {
 public:
  explicit SteppingClock(duration step)
      : step_(step.count()),
        ns_{(time_point{} + std::chrono::hours{1}).time_since_epoch().count()} {
  }

  [[nodiscard]] time_point now() const override {
    return time_point{
        duration{ns_.fetch_add(step_, std::memory_order_acq_rel)}};
  }

 private:
  duration::rep step_;
  mutable std::atomic<duration::rep> ns_;
};

TEST(Executor, ExpensiveQueryIsCancelledBetweenGridRows) {
  const DomainSpec dom = small_domain(/*gx=*/40, /*gy=*/8, /*gt=*/4);
  serve::SnapshotRegistry reg(dom);
  publish_uniform(reg, dom, 1);
  sched::ThreadPool pool(1);
  SteppingClock clock(milliseconds{1});  // every look at the clock costs 1 ms
  serve::ExecutorConfig cfg;
  cfg.session.request_deadline = milliseconds{10};
  cfg.grid_rows_per_check = 1;  // poll between every X-row
  serve::RequestExecutor exec(reg, pool, cfg, &clock);

  // 40 X-rows at 1 ms per cancellation poll exhausts the 10 ms deadline
  // mid-scan: the request must come back kDeadlineExceeded from *inside*
  // the grid loop, not run to completion.
  const wire::Frame f =
      frame_of(wire::RegionGridQuery{Extent3{0, 40, 0, 8, 0, 4}});
  (void)expect_error(exec.submit(f.data(), f.size()).get(),
                     wire::ErrorCode::kDeadlineExceeded);
  exec.drain();
  const serve::ExecutorStats st = exec.stats();
  EXPECT_EQ(st.cancelled_inflight, 1u);
  EXPECT_EQ(st.completed, 0u);
}

TEST(Executor, DrainFailsQueuedFinishesInflightRejectsNew) {
  const DomainSpec dom = small_domain();
  serve::SnapshotRegistry reg(dom);
  publish_uniform(reg, dom, 1);
  sched::ThreadPool pool(2);
  serve::ExecutorConfig cfg;
  cfg.admission.budgets[0] = serve::ClassBudget{1, 4};
  serve::RequestExecutor exec(reg, pool, cfg);

  PoolBlocker gate(pool);
  const wire::Frame f = frame_of(wire::DensityAtQuery{{5, 5, 5}});
  auto inflight = exec.submit(f.data(), f.size());  // holds the one slot
  auto queued = exec.submit(f.data(), f.size());

  std::thread drainer([&] { exec.drain(); });
  // drain's first phase is synchronous: queued requests fail immediately,
  // even while the in-flight one is still stuck behind the gate.
  (void)expect_error(queued.get(), wire::ErrorCode::kShuttingDown);
  EXPECT_TRUE(exec.draining());
  auto late = exec.submit(f.data(), f.size());
  (void)expect_error(late.get(), wire::ErrorCode::kShuttingDown);

  gate.release();
  drainer.join();
  EXPECT_TRUE(is_success(inflight.get()))
      << "in-flight work finishes cleanly through a drain";

  const serve::ExecutorStats st = exec.stats();
  EXPECT_EQ(st.rejected_shutdown, 2u);
  EXPECT_EQ(st.completed, 1u);
}

TEST(Executor, WriterStallBreakerShedsExpensiveKeepsCheap) {
  const DomainSpec dom = small_domain();
  serve::SnapshotRegistry reg(dom);
  publish_uniform(reg, dom, 1);
  sched::ThreadPool pool(2);
  serve::ExecutorConfig cfg;
  cfg.admission.stall_after = milliseconds{5};
  serve::RequestExecutor exec(reg, pool, cfg);

  // Let the publish age past the breaker threshold (real clock: the
  // registry timestamps publishes itself).
  std::this_thread::sleep_for(milliseconds{30});

  const wire::Frame expensive =
      frame_of(wire::RegionGridQuery{Extent3{0, 8, 0, 8, 0, 4}});
  const wire::ErrorResponse err = expect_error(
      exec.submit(expensive.data(), expensive.size()).get(),
      wire::ErrorCode::kOverloaded);
  EXPECT_STREQ(err.message.c_str(), "writer stalled; expensive queries shed");

  const wire::Frame cheap = frame_of(wire::DensityAtQuery{{5, 5, 5}});
  EXPECT_TRUE(is_success(exec.submit(cheap.data(), cheap.size()).get()))
      << "cheap pinned reads keep serving through a writer stall";

  // The writer comes back: expensive queries are admitted again.
  publish_uniform(reg, dom, 2);
  EXPECT_TRUE(
      is_success(exec.submit(expensive.data(), expensive.size()).get()));
  EXPECT_EQ(exec.stats().admission.shed_stalled, 1u);
}

TEST(Executor, PerSessionRateLimitIsEnforcedOnTheWire) {
  const DomainSpec dom = small_domain();
  serve::SnapshotRegistry reg(dom);
  publish_uniform(reg, dom, 1);
  sched::ThreadPool pool(2);
  util::ManualClock clock;
  serve::ExecutorConfig cfg;
  cfg.admission.session_rate = 10.0;
  cfg.admission.session_burst = 2.0;
  serve::RequestExecutor exec(reg, pool, cfg, &clock);

  const wire::Frame f = frame_of(wire::DensityAtQuery{{5, 5, 5}});
  auto a = exec.submit(f.data(), f.size(), /*session_key=*/7);
  auto b = exec.submit(f.data(), f.size(), 7);
  const wire::ErrorResponse err = expect_error(
      exec.submit(f.data(), f.size(), 7).get(), wire::ErrorCode::kOverloaded);
  EXPECT_STREQ(err.message.c_str(), "session rate limit exceeded");
  EXPECT_GE(err.retry_after_ms, 1u);

  // The bucket refills on the injected clock; anonymous key 0 never sheds.
  clock.advance(milliseconds{150});
  auto c = exec.submit(f.data(), f.size(), 7);
  auto anon = exec.submit(f.data(), f.size(), 0);
  for (auto* fut : {&a, &b, &c, &anon}) EXPECT_TRUE(is_success(fut->get()));
  EXPECT_EQ(exec.stats().admission.shed_session, 1u);
}

TEST(Executor, MixedConcurrentWorkloadAccountsForEveryFrame) {
  // The TSan target: four submitter threads race the writer and each
  // other through the full admission/execution/shed machinery, and the
  // disposition counters must balance to the exact submission count.
  const DomainSpec dom = small_domain();
  serve::SnapshotRegistry reg(dom);
  publish_uniform(reg, dom, 1);
  sched::ThreadPool pool(4);
  serve::ExecutorConfig cfg;
  cfg.admission.budgets = {serve::ClassBudget{2, 16}, serve::ClassBudget{1, 8},
                           serve::ClassBudget{1, 4}};
  serve::RequestExecutor exec(reg, pool, cfg);

  const std::vector<wire::Frame> mix = {
      frame_of(wire::DensityAtQuery{{5, 5, 5}}),
      frame_of(wire::SliceQuery{2}),
      frame_of(wire::RegionQuery{Extent3{0, 8, 0, 8, 0, 4},
                                 wire::RegionOp::kSum}),
      frame_of(wire::RegionGridQuery{Extent3{0, 8, 0, 8, 0, 4}}),
      frame_of(wire::HotspotsQuery{4, 0.9}),
      frame_of(wire::HealthQuery{}),
      {0xBA, 0xD0, 0xBA, 0xD0},  // malformed rides along
  };

  std::atomic<bool> stop_writer{false};
  std::thread writer([&] {
    std::uint64_t version = 2;
    while (!stop_writer.load(std::memory_order_acquire)) {
      publish_uniform(reg, dom, version++);
      std::this_thread::sleep_for(milliseconds{2});
    }
  });

  constexpr int kThreads = 4;
  constexpr int kPerThread = 40;
  std::vector<std::thread> submitters;
  std::mutex fut_mu;
  std::vector<std::future<wire::Frame>> futures;
  for (int t = 0; t < kThreads; ++t)
    submitters.emplace_back([&, t] {
      std::vector<std::future<wire::Frame>> local;
      for (int i = 0; i < kPerThread; ++i) {
        const wire::Frame& f = mix[static_cast<std::size_t>(t + i) %
                                   mix.size()];
        local.push_back(exec.submit(f.data(), f.size(),
                                    static_cast<std::uint64_t>(t + 1)));
      }
      std::lock_guard<std::mutex> lk(fut_mu);
      for (auto& fut : local) futures.push_back(std::move(fut));
    });
  for (auto& th : submitters) th.join();
  stop_writer.store(true, std::memory_order_release);
  writer.join();

  for (auto& fut : futures) {
    ASSERT_EQ(fut.wait_for(std::chrono::seconds{60}),
              std::future_status::ready);
    (void)must_decode(fut.get());
  }
  exec.drain();

  const serve::ExecutorStats st = exec.stats();
  EXPECT_EQ(st.submitted, static_cast<std::uint64_t>(kThreads * kPerThread));
  // Every submission lands in exactly one disposition bucket.
  EXPECT_EQ(st.submitted,
            st.malformed + st.health_inline + st.shed + st.rejected_shutdown +
                st.expired_at_dequeue + st.expired_result +
                st.cancelled_inflight + st.failed + st.completed);
  EXPECT_EQ(st.failed, 0u);
  EXPECT_LE(st.queue_high_water, std::size_t{16 + 8 + 4});
}

// ---------------------------------------------------------------------------
// Chaos: the serve.admit / serve.execute / serve.shed failpoint sites
// (failpoint builds only)

class OverloadChaos : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!fp::enabled()) GTEST_SKIP() << "requires -DSTKDE_FAILPOINTS=ON";
    fp::disarm_all();
  }
  void TearDown() override { fp::disarm_all(); }
};

TEST_F(OverloadChaos, AdmissionFaultDegradesToTypedBackpressure) {
  const DomainSpec dom = small_domain();
  serve::SnapshotRegistry reg(dom);
  publish_uniform(reg, dom, 1);
  sched::ThreadPool pool(2);
  serve::RequestExecutor exec(reg, pool);

  fp::Spec spec;
  spec.action = fp::Action::kError;
  spec.after_hits = 1;
  fp::arm("serve.admit", spec);
  const wire::Frame f = frame_of(wire::DensityAtQuery{{5, 5, 5}});
  const wire::ErrorResponse err = expect_error(
      exec.submit(f.data(), f.size()).get(), wire::ErrorCode::kOverloaded);
  EXPECT_STREQ(err.message.c_str(), "admission fault injected");
  EXPECT_GE(err.retry_after_ms, 1u);

  fp::disarm_all();
  EXPECT_TRUE(is_success(exec.submit(f.data(), f.size()).get()))
      << "a disarmed admission path admits again";
  EXPECT_EQ(exec.stats().shed, 1u);
}

TEST_F(OverloadChaos, ExecutionFaultAnswersInternalErrorFrame) {
  const DomainSpec dom = small_domain();
  serve::SnapshotRegistry reg(dom);
  publish_uniform(reg, dom, 1);
  sched::ThreadPool pool(2);
  serve::RequestExecutor exec(reg, pool);

  fp::Spec spec;
  spec.action = fp::Action::kError;
  spec.after_hits = 1;
  fp::arm("serve.execute", spec);
  const wire::Frame f = frame_of(wire::DensityAtQuery{{5, 5, 5}});
  (void)expect_error(exec.submit(f.data(), f.size()).get(),
                     wire::ErrorCode::kInternal);
  exec.drain();
  EXPECT_EQ(exec.stats().failed, 1u);
}

TEST_F(OverloadChaos, ShedProbeCountsEveryRejection) {
  const DomainSpec dom = small_domain();
  serve::SnapshotRegistry reg(dom);
  publish_uniform(reg, dom, 1);
  sched::ThreadPool pool(2);
  serve::ExecutorConfig cfg;
  cfg.admission.budgets[0] = serve::ClassBudget{1, 0};  // no queue at all
  serve::RequestExecutor exec(reg, pool, cfg);

  fp::arm("serve.shed", fp::Spec{});  // kOff: count traversals only
  PoolBlocker gate(pool);
  const wire::Frame f = frame_of(wire::DensityAtQuery{{5, 5, 5}});
  auto held = exec.submit(f.data(), f.size());
  auto shed1 = exec.submit(f.data(), f.size());
  auto shed2 = exec.submit(f.data(), f.size());
  (void)expect_error(shed1.get(), wire::ErrorCode::kOverloaded);
  (void)expect_error(shed2.get(), wire::ErrorCode::kOverloaded);
  EXPECT_EQ(fp::hits("serve.shed"), 2u);
  gate.release();
  (void)held.get();
}

}  // namespace
}  // namespace stkde
