#include "sched/coloring.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace stkde::sched {
namespace {

TEST(ParityColoring, Uses8ColorsOnLargeLattices) {
  const StencilGraph g(4, 4, 4);
  const Coloring c = parity_coloring(g);
  EXPECT_EQ(c.num_colors, 8);
  EXPECT_TRUE(is_valid_coloring(g, c));
}

TEST(ParityColoring, FewerColorsOnThinLattices) {
  const StencilGraph g(1, 4, 4);  // parity of a is always 0
  const Coloring c = parity_coloring(g);
  EXPECT_LE(c.num_colors, 4);
  EXPECT_TRUE(is_valid_coloring(g, c));
}

TEST(ParityColoring, SingletonUsesOneColor) {
  const StencilGraph g(1, 1, 1);
  const Coloring c = parity_coloring(g);
  EXPECT_EQ(c.num_colors, 1);
}

TEST(GreedyColoring, NaturalOrderIsValid) {
  const StencilGraph g(5, 4, 3);
  const Coloring c = greedy_coloring(g, natural_order(g.vertex_count()));
  EXPECT_TRUE(is_valid_coloring(g, c));
  EXPECT_LE(c.num_colors, 27);
}

TEST(GreedyColoring, AtMost8ColorsOnStencil) {
  // Greedy on a stencil graph in natural order matches the parity structure:
  // it should not need more than 8 colors.
  const StencilGraph g(6, 6, 6);
  const Coloring c = greedy_coloring(g, natural_order(g.vertex_count()));
  EXPECT_LE(c.num_colors, 8);
}

TEST(GreedyColoring, LoadDescendingOrderIsValid) {
  const StencilGraph g(4, 4, 4);
  util::Xoshiro256 rng(3);
  std::vector<double> loads(static_cast<std::size_t>(g.vertex_count()));
  for (auto& l : loads) l = rng.uniform(0.0, 100.0);
  const Coloring c =
      greedy_coloring(g, ColoringOrder::kLoadDescending, loads);
  EXPECT_TRUE(is_valid_coloring(g, c));
}

TEST(GreedyColoring, SmallestLastOrderIsValid) {
  const StencilGraph g(4, 3, 5);
  const Coloring c = greedy_coloring(g, ColoringOrder::kSmallestLast, {});
  EXPECT_TRUE(is_valid_coloring(g, c));
  EXPECT_LE(c.num_colors, 27);
}

TEST(GreedyColoring, RejectsWrongOrderSize) {
  const StencilGraph g(2, 2, 2);
  EXPECT_THROW(greedy_coloring(g, std::vector<std::int64_t>{0, 1}),
               std::invalid_argument);
}

TEST(LoadDescendingOrder, SortsByLoadStable) {
  const std::vector<double> loads = {1.0, 5.0, 3.0, 5.0};
  const auto o = load_descending_order(loads);
  EXPECT_EQ(o[0], 1);  // first 5.0
  EXPECT_EQ(o[1], 3);  // second 5.0 (stable)
  EXPECT_EQ(o[2], 2);
  EXPECT_EQ(o[3], 0);
}

TEST(LoadDescendingColoring, HeaviestVertexGetsColorZero) {
  const StencilGraph g(3, 3, 3);
  std::vector<double> loads(27, 1.0);
  loads[static_cast<std::size_t>(g.flat(1, 1, 1))] = 100.0;
  const Coloring c = greedy_coloring(g, ColoringOrder::kLoadDescending, loads);
  EXPECT_EQ(c.color[static_cast<std::size_t>(g.flat(1, 1, 1))], 0);
}

TEST(SmallestLastOrder, IsAPermutation) {
  const StencilGraph g(3, 4, 2);
  const auto o = smallest_last_order(g);
  std::vector<bool> seen(static_cast<std::size_t>(g.vertex_count()), false);
  for (const auto v : o) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, g.vertex_count());
    ASSERT_FALSE(seen[static_cast<std::size_t>(v)]);
    seen[static_cast<std::size_t>(v)] = true;
  }
}

TEST(IsValidColoring, DetectsConflicts) {
  const StencilGraph g(2, 1, 1);
  Coloring c;
  c.color = {0, 0};
  c.num_colors = 1;
  EXPECT_FALSE(is_valid_coloring(g, c));
  c.color = {0, 1};
  c.num_colors = 2;
  EXPECT_TRUE(is_valid_coloring(g, c));
}

TEST(IsValidColoring, DetectsUncoloredVertices) {
  const StencilGraph g(2, 1, 1);
  Coloring c;
  c.color = {0, -1};
  EXPECT_FALSE(is_valid_coloring(g, c));
}

TEST(ColoringOrderNames, AreDistinct) {
  EXPECT_EQ(to_string(ColoringOrder::kNatural), "natural");
  EXPECT_EQ(to_string(ColoringOrder::kLoadDescending), "load-desc");
  EXPECT_EQ(to_string(ColoringOrder::kSmallestLast), "smallest-last");
}

}  // namespace
}  // namespace stkde::sched
