#include "helpers.hpp"

#include <algorithm>

namespace stkde::testing {

TinyInstance make_tiny(std::size_t n, std::int32_t Hs, std::int32_t Ht,
                       std::uint64_t seed) {
  TinyInstance t;
  t.domain = DomainSpec{0.0, 0.0, 0.0, 24.0, 20.0, 16.0, 1.0, 1.0};
  data::ClusterConfig cfg;
  cfg.n_points = n;
  cfg.n_clusters = 3;
  cfg.cluster_sigma_frac = 0.1;
  cfg.background_frac = 0.2;
  cfg.seed = seed;
  t.points = data::generate_clustered(t.domain, cfg);
  t.params.hs = static_cast<double>(Hs);
  t.params.ht = static_cast<double>(Ht);
  t.params.threads = 2;
  return t;
}

double grid_tolerance(const DensityGrid& reference) {
  // Float accumulation in different orders: allow 1e-4 of the peak value
  // plus a tiny absolute floor for all-zero grids.
  return 1e-4 * static_cast<double>(std::max(reference.max_value(), 0.0f)) +
         1e-12;
}

}  // namespace stkde::testing
