#include "util/args.hpp"

#include <gtest/gtest.h>

namespace stkde::util {
namespace {

ArgParser parse(std::initializer_list<const char*> args) {
  std::vector<const char*> v(args);
  return ArgParser(static_cast<int>(v.size()), v.data());
}

TEST(ArgParser, ParsesSpaceSeparatedValues) {
  const auto a = parse({"prog", "--hs", "2.5", "--name", "dengue"});
  EXPECT_DOUBLE_EQ(a.get("hs", 0.0), 2.5);
  EXPECT_EQ(a.get("name", ""), "dengue");
}

TEST(ArgParser, ParsesEqualsSeparatedValues) {
  const auto a = parse({"prog", "--threads=4", "--scale=0.5"});
  EXPECT_EQ(a.get("threads", 0), 4);
  EXPECT_DOUBLE_EQ(a.get("scale", 0.0), 0.5);
}

TEST(ArgParser, BooleanFlags) {
  const auto a = parse({"prog", "--fast", "--verbose"});
  EXPECT_TRUE(a.has("fast"));
  EXPECT_TRUE(a.has("verbose"));
  EXPECT_FALSE(a.has("slow"));
}

TEST(ArgParser, FallbacksWhenAbsent) {
  const auto a = parse({"prog"});
  EXPECT_EQ(a.get("x", 7), 7);
  EXPECT_DOUBLE_EQ(a.get("y", 1.5), 1.5);
  EXPECT_EQ(a.get("z", "dflt"), "dflt");
}

TEST(ArgParser, PositionalArgumentsKeepOrder) {
  const auto a = parse({"prog", "first", "--k", "v", "second"});
  ASSERT_EQ(a.positional().size(), 2u);
  EXPECT_EQ(a.positional()[0], "first");
  EXPECT_EQ(a.positional()[1], "second");
}

TEST(ArgParser, FlagFollowedByFlagIsBoolean) {
  const auto a = parse({"prog", "--a", "--b", "val"});
  EXPECT_TRUE(a.has("a"));
  EXPECT_EQ(a.get("a", "x"), "");
  EXPECT_EQ(a.get("b", ""), "val");
}

TEST(ArgParser, MalformedNumberFallsBack) {
  const auto a = parse({"prog", "--n", "abc"});
  EXPECT_EQ(a.get("n", 3), 3);
}

TEST(ArgParser, ProgramName) {
  const auto a = parse({"myprog"});
  EXPECT_EQ(a.program(), "myprog");
}

}  // namespace
}  // namespace stkde::util
