#include <gtest/gtest.h>

#include <cmath>

#include "geom/bounding_box.hpp"
#include "geom/domain.hpp"
#include "geom/voxel_mapper.hpp"
#include "util/rng.hpp"

namespace stkde {
namespace {

TEST(BoundingBox, EmptyByDefault) {
  BoundingBox3 b;
  EXPECT_TRUE(b.empty());
}

TEST(BoundingBox, ExpandAbsorbsPoints) {
  BoundingBox3 b;
  b.expand(Point{1, 2, 3});
  b.expand(Point{-1, 5, 0});
  EXPECT_FALSE(b.empty());
  EXPECT_DOUBLE_EQ(b.xmin, -1);
  EXPECT_DOUBLE_EQ(b.xmax, 1);
  EXPECT_DOUBLE_EQ(b.ymax, 5);
  EXPECT_DOUBLE_EQ(b.tmin, 0);
}

TEST(BoundingBox, OfPointSet) {
  const PointSet pts = {{0, 0, 0}, {2, 3, 4}};
  const auto b = BoundingBox3::of(pts);
  EXPECT_DOUBLE_EQ(b.width(), 2);
  EXPECT_DOUBLE_EQ(b.height(), 3);
  EXPECT_DOUBLE_EQ(b.duration(), 4);
  EXPECT_TRUE(BoundingBox3::of({}).empty());
}

TEST(BoundingBox, PaddedGrowsSpatialAndTemporalDifferently) {
  BoundingBox3 b;
  b.expand(Point{0, 0, 0});
  const auto p = b.padded(2.0, 5.0);
  EXPECT_DOUBLE_EQ(p.xmin, -2);
  EXPECT_DOUBLE_EQ(p.ymax, 2);
  EXPECT_DOUBLE_EQ(p.tmin, -5);
  EXPECT_DOUBLE_EQ(p.tmax, 5);
}

TEST(BoundingBox, ContainsIsInclusive) {
  BoundingBox3 b;
  b.expand(Point{0, 0, 0});
  b.expand(Point{1, 1, 1});
  EXPECT_TRUE(b.contains(Point{1, 1, 1}));
  EXPECT_TRUE(b.contains(Point{0.5, 0.5, 0.5}));
  EXPECT_FALSE(b.contains(Point{1.01, 0.5, 0.5}));
}

TEST(DomainSpec, DimsUseCeilConvention) {
  // Gx = ceil(gx / sres), per Table 1.
  DomainSpec d{0, 0, 0, 10.0, 10.0, 10.0, 3.0, 4.0};
  EXPECT_EQ(d.dims().gx, 4);  // ceil(10/3)
  EXPECT_EQ(d.dims().gy, 4);
  EXPECT_EQ(d.dims().gt, 3);  // ceil(10/4)
}

TEST(DomainSpec, ExactDivisionHasNoExtraVoxel) {
  DomainSpec d{0, 0, 0, 12.0, 8.0, 6.0, 2.0, 3.0};
  EXPECT_EQ(d.dims().gx, 6);
  EXPECT_EQ(d.dims().gy, 4);
  EXPECT_EQ(d.dims().gt, 2);
}

TEST(DomainSpec, BandwidthVoxelsUseCeil) {
  DomainSpec d{0, 0, 0, 100, 100, 100, 2.0, 3.0};
  EXPECT_EQ(d.spatial_bandwidth_voxels(5.0), 3);   // ceil(5/2)
  EXPECT_EQ(d.spatial_bandwidth_voxels(4.0), 2);
  EXPECT_EQ(d.temporal_bandwidth_voxels(7.0), 3);  // ceil(7/3)
  EXPECT_EQ(d.temporal_bandwidth_voxels(0.1), 1);  // floor of 1 voxel
}

TEST(DomainSpec, DegenerateExtentGetsOneVoxel) {
  DomainSpec d{0, 0, 0, 0.0, 5.0, 5.0, 1.0, 1.0};
  EXPECT_EQ(d.dims().gx, 1);
}

TEST(DomainSpec, ValidateRejectsBadResolutions) {
  DomainSpec d{0, 0, 0, 10, 10, 10, 0.0, 1.0};
  EXPECT_THROW(d.validate(), std::invalid_argument);
  d.sres = -1.0;
  EXPECT_THROW(d.validate(), std::invalid_argument);
  d.sres = 1.0;
  d.gx = -3.0;
  EXPECT_THROW(d.validate(), std::invalid_argument);
}

TEST(DomainSpec, CoveringMatchesBox) {
  BoundingBox3 b;
  b.expand(Point{10, 20, 30});
  b.expand(Point{14, 26, 33});
  const auto d = DomainSpec::covering(b, 2.0, 1.0);
  EXPECT_DOUBLE_EQ(d.x0, 10);
  EXPECT_DOUBLE_EQ(d.t0, 30);
  EXPECT_EQ(d.dims().gx, 2);
  EXPECT_EQ(d.dims().gy, 3);
  EXPECT_EQ(d.dims().gt, 3);
  EXPECT_THROW(DomainSpec::covering(BoundingBox3{}, 1, 1),
               std::invalid_argument);
}

TEST(VoxelMapper, PointsMapToContainingCell) {
  const DomainSpec d{0, 0, 0, 10, 10, 10, 2.0, 5.0};
  const VoxelMapper m(d);
  EXPECT_EQ(m.voxel_of(Point{0.0, 0.0, 0.0}), (Voxel{0, 0, 0}));
  EXPECT_EQ(m.voxel_of(Point{1.99, 3.0, 4.9}), (Voxel{0, 1, 0}));
  EXPECT_EQ(m.voxel_of(Point{2.0, 2.0, 5.0}), (Voxel{1, 1, 1}));
}

TEST(VoxelMapper, BorderPointsClampIntoGrid) {
  const DomainSpec d{0, 0, 0, 10, 10, 10, 2.0, 5.0};
  const VoxelMapper m(d);
  // Domain max border belongs to the last voxel.
  EXPECT_EQ(m.voxel_of(Point{10.0, 10.0, 10.0}), (Voxel{4, 4, 1}));
  // Outside points clamp (callers may pass events outside the domain).
  EXPECT_EQ(m.voxel_of(Point{-5.0, 100.0, 50.0}), (Voxel{0, 4, 1}));
}

TEST(VoxelMapper, CentersAreMidCell) {
  const DomainSpec d{10, 20, 30, 10, 10, 10, 2.0, 5.0};
  const VoxelMapper m(d);
  EXPECT_DOUBLE_EQ(m.x_of(0), 11.0);
  EXPECT_DOUBLE_EQ(m.y_of(1), 23.0);
  EXPECT_DOUBLE_EQ(m.t_of(0), 32.5);
  const Point c = m.center_of(Voxel{0, 1, 0});
  EXPECT_DOUBLE_EQ(c.x, 11.0);
  EXPECT_DOUBLE_EQ(c.y, 23.0);
  EXPECT_DOUBLE_EQ(c.t, 32.5);
}

TEST(VoxelMapper, InDomainIsBorderInclusive) {
  const DomainSpec d{0, 0, 0, 10, 10, 10, 1.0, 1.0};
  const VoxelMapper m(d);
  EXPECT_TRUE(m.in_domain(Point{0, 0, 0}));
  EXPECT_TRUE(m.in_domain(Point{10, 10, 10}));
  EXPECT_FALSE(m.in_domain(Point{10.001, 5, 5}));
}

// The correctness keystone of the point-based algorithms: every voxel whose
// center lies within the bandwidth of a point is inside the loop ranges
// [Xi - Hs, Xi + Hs] (likewise for y and t). Checked by randomized sweep
// over resolutions/bandwidths.
TEST(VoxelMapper, CylinderLoopRangeCoversKernelSupport) {
  util::Xoshiro256 rng(99);
  for (int iter = 0; iter < 200; ++iter) {
    const double sres = rng.uniform(0.3, 4.0);
    const double tres = rng.uniform(0.3, 4.0);
    const double hs = rng.uniform(0.5, 10.0);
    const double ht = rng.uniform(0.5, 10.0);
    const DomainSpec d{0, 0, 0, 60.0, 60.0, 60.0, sres, tres};
    const VoxelMapper m(d);
    const std::int32_t Hs = d.spatial_bandwidth_voxels(hs);
    const std::int32_t Ht = d.temporal_bandwidth_voxels(ht);
    const Point p{rng.uniform(0.0, 60.0), rng.uniform(0.0, 60.0),
                  rng.uniform(0.0, 60.0)};
    const Voxel c = m.voxel_of(p);
    // Scan every voxel; any center within the bandwidth must be in range.
    const GridDims dims = d.dims();
    for (std::int32_t X = 0; X < dims.gx; ++X) {
      const double dx = std::abs(m.x_of(X) - p.x);
      if (dx < hs) {
        ASSERT_TRUE(X >= c.x - Hs && X <= c.x + Hs)
            << "X=" << X << " c.x=" << c.x << " Hs=" << Hs;
      }
    }
    for (std::int32_t T = 0; T < dims.gt; ++T) {
      const double dt = std::abs(m.t_of(T) - p.t);
      if (dt <= ht) {
        ASSERT_TRUE(T >= c.t - Ht && T <= c.t + Ht)
            << "T=" << T << " c.t=" << c.t << " Ht=" << Ht;
      }
    }
  }
}

}  // namespace
}  // namespace stkde
