#include "util/memory.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"

namespace stkde::util {
namespace {

TEST(FormatBytes, PicksUnits) {
  EXPECT_EQ(format_bytes(512), "512B");
  EXPECT_EQ(format_bytes(2048), "2KB");
  EXPECT_EQ(format_bytes(79ULL << 20), "79MB");
  EXPECT_EQ(format_bytes(2ULL << 30), "2.00GB");
}

TEST(FormatBytes, MatchesPaperTable2Sizes) {
  // Table 2 reports grid sizes at 4 bytes/voxel in MiB; the paper's column
  // rounds inconsistently (+-2 MiB), so we assert proximity, not equality.
  EXPECT_EQ(to_mib(148ULL * 194 * 728 * 4), 79u);  // Dengue Lr: exact
  EXPECT_NEAR(static_cast<double>(to_mib(6501ULL * 3001 * 84 * 4)), 6252.0,
              2.0);  // PollenUS VHr
  EXPECT_NEAR(static_cast<double>(to_mib(1781ULL * 3601 * 2435 * 4)), 59570.0,
              3.0);  // eBird Hr
}

TEST(AvailableMemory, ReturnsSomethingPlausible) {
  const std::uint64_t m = available_memory_bytes();
  EXPECT_GT(m, 64ULL << 20);
}

TEST(MemoryBudget, RequireBelowLimitPasses) {
  stkde::testing::ScopedMemoryBudget guard(1 << 20);
  EXPECT_NO_THROW(MemoryBudget::instance().require(1 << 19));
}

TEST(MemoryBudget, RequireAboveLimitThrowsTyped) {
  stkde::testing::ScopedMemoryBudget guard(1 << 20);
  try {
    MemoryBudget::instance().require(1 << 21);
    FAIL() << "expected MemoryBudgetExceeded";
  } catch (const MemoryBudgetExceeded& e) {
    EXPECT_EQ(e.requested(), 1u << 21);
    EXPECT_EQ(e.budget(), 1u << 20);
    EXPECT_NE(std::string(e.what()).find("memory budget"), std::string::npos);
  }
}

TEST(MemoryBudget, ScopedOverrideRestores) {
  const std::uint64_t before = MemoryBudget::instance().limit();
  {
    stkde::testing::ScopedMemoryBudget guard(42);
    EXPECT_EQ(MemoryBudget::instance().limit(), 42u);
  }
  EXPECT_EQ(MemoryBudget::instance().limit(), before);
}

}  // namespace
}  // namespace stkde::util
