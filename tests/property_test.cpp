// Mathematical properties of the estimate itself, checked across kernels and
// strategies: mass conservation, translation invariance, scale behaviour,
// monotone response to bandwidth. These catch errors equivalence tests
// cannot (a consistently-wrong normalization would pass every comparison).

#include <gtest/gtest.h>

#include <cmath>

#include "geom/voxel_mapper.hpp"
#include "helpers.hpp"

namespace stkde {
namespace {

using testing::make_tiny;

// ---- mass conservation ------------------------------------------------------

// Integral of the STKDE over space-time is (sum over voxels) * sres^2 * tres.
// For kernels whose factors integrate to 1 and points away from the border,
// the mass is 1 (each of the n points contributes 1/n). We compare against
// the kernel's true numeric integral so non-normalized kernels also pass.
struct MassCase {
  std::string kernel;
  Algorithm alg;
};

class MassConservationTest : public ::testing::TestWithParam<MassCase> {};

TEST_P(MassConservationTest, TotalMassMatchesKernelIntegral) {
  const auto& [kernel, alg] = GetParam();
  // Fine grid so the midpoint rule is accurate: 64^3 voxels, bandwidth 12.
  const DomainSpec dom{0, 0, 0, 64, 64, 64, 1.0, 1.0};
  // Interior points only: the cylinder (radius 12) must stay inside.
  data::ClusterConfig cfg;
  cfg.n_points = 40;
  cfg.n_clusters = 2;
  cfg.cluster_sigma_frac = 0.05;
  cfg.background_frac = 0.0;
  cfg.seed = 3;
  PointSet pts;
  for (auto& p : data::generate_clustered(dom, cfg)) {
    p.x = std::clamp(p.x, 14.0, 50.0);
    p.y = std::clamp(p.y, 14.0, 50.0);
    p.t = std::clamp(p.t, 14.0, 50.0);
    pts.push_back(p);
  }
  Params params;
  params.hs = 12.0;
  params.ht = 12.0;
  params.threads = 2;
  params.kernel = kernels::kernel_by_name(kernel);

  const Result r = estimate(pts, dom, params, alg);
  const double mass = r.grid.sum() * dom.sres * dom.sres * dom.tres;

  const double expected = std::visit(
      [](const auto& k) {
        return kernels::spatial_integral(k, 600) *
               kernels::temporal_integral(k, 20000);
      },
      params.kernel);
  EXPECT_NEAR(mass, expected, 0.05 * std::max(1.0, expected))
      << kernel << " via " << to_string(alg);
}

INSTANTIATE_TEST_SUITE_P(
    KernelsAndStrategies, MassConservationTest,
    ::testing::Values(MassCase{"epanechnikov", Algorithm::kPBSym},
                      MassCase{"uniform", Algorithm::kPBSym},
                      MassCase{"quartic", Algorithm::kPBSym},
                      MassCase{"triangular", Algorithm::kPBSym},
                      MassCase{"gaussian-truncated", Algorithm::kPBSym},
                      MassCase{"as-printed", Algorithm::kPBSym},
                      MassCase{"epanechnikov", Algorithm::kPBSymDD},
                      MassCase{"epanechnikov", Algorithm::kPBSymPDSched},
                      MassCase{"epanechnikov", Algorithm::kPBSymDR}),
    [](const ::testing::TestParamInfo<MassCase>& info) {
      std::string s = info.param.kernel + "_" + to_string(info.param.alg);
      for (auto& c : s)
        if (c == '-') c = '_';
      return s;
    });

// ---- invariances ------------------------------------------------------------

TEST(Properties, TranslationInvariance) {
  // Shifting points and domain together shifts the volume bit-for-bit.
  const DomainSpec dom{0, 0, 0, 32, 32, 32, 1.0, 1.0};
  const PointSet pts = data::generate_uniform(dom, 100, 5);
  Params params;
  params.hs = 4.0;
  params.ht = 3.0;
  const Result base = estimate(pts, dom, params, Algorithm::kPBSym);

  DomainSpec shifted = dom;
  shifted.x0 += 100.0;
  shifted.y0 -= 17.0;
  shifted.t0 += 3.5;
  PointSet moved;
  for (const auto& p : pts)
    moved.push_back(Point{p.x + 100.0, p.y - 17.0, p.t + 3.5});
  const Result shifted_r = estimate(moved, shifted, params, Algorithm::kPBSym);
  EXPECT_LE(shifted_r.grid.max_abs_diff(base.grid),
            testing::grid_tolerance(base.grid));
}

TEST(Properties, DensityScalesInverselyWithN) {
  // Doubling every point (duplicates) keeps the density identical: the sum
  // doubles but so does n in the 1/(n hs^2 ht) prefactor.
  const DomainSpec dom{0, 0, 0, 32, 32, 32, 1.0, 1.0};
  const PointSet pts = data::generate_uniform(dom, 80, 9);
  PointSet doubled = pts;
  doubled.insert(doubled.end(), pts.begin(), pts.end());
  Params params;
  params.hs = 3.0;
  params.ht = 2.0;
  const Result a = estimate(pts, dom, params, Algorithm::kPBSym);
  const Result b = estimate(doubled, dom, params, Algorithm::kPBSym);
  EXPECT_LE(b.grid.max_abs_diff(a.grid), 2.0 * testing::grid_tolerance(a.grid));
}

TEST(Properties, WiderBandwidthLowersThePeak) {
  // KDE smoothing: larger hs spreads each point's unit mass over more
  // voxels, so the maximum density decreases (Fig. 1's visual effect).
  const DomainSpec dom{0, 0, 0, 48, 48, 48, 1.0, 1.0};
  const PointSet pts = data::generate_degenerate(dom, 50);
  Params params;
  params.ht = 4.0;
  params.threads = 1;
  double prev = std::numeric_limits<double>::infinity();
  for (const double hs : {3.0, 6.0, 12.0}) {
    params.hs = hs;
    const Result r = estimate(pts, dom, params, Algorithm::kPBSym);
    EXPECT_LT(r.grid.max_value(), prev);
    prev = r.grid.max_value();
  }
}

TEST(Properties, DensityIsNonNegativeEverywhere) {
  auto t = make_tiny(200, 4, 3);
  for (const Algorithm a : {Algorithm::kPBSym, Algorithm::kPBSymDD,
                            Algorithm::kPBSymPDRep}) {
    const Result r = estimate(t.points, t.domain, t.params, a);
    float min_v = 0.0f;
    for (std::int64_t i = 0; i < r.grid.size(); ++i)
      min_v = std::min(min_v, r.grid.data()[i]);
    EXPECT_GE(min_v, 0.0f) << to_string(a);
  }
}

TEST(Properties, PeakIsNearTheHotSpot) {
  const DomainSpec dom{0, 0, 0, 32, 32, 32, 1.0, 1.0};
  PointSet pts = data::generate_degenerate(dom, 100);  // all at (16,16,16)
  Params params;
  params.hs = 4.0;
  params.ht = 4.0;
  const Result r = estimate(pts, dom, params, Algorithm::kPBSym);
  const float peak = r.grid.max_value();
  EXPECT_FLOAT_EQ(r.grid.at(16, 16, 16), peak);
}

TEST(Properties, DisjointSubsetsSumToWhole) {
  // Linearity: f(A ∪ B) * |A∪B| = f(A) * |A| + f(B) * |B| pointwise.
  const DomainSpec dom{0, 0, 0, 24, 24, 24, 1.0, 1.0};
  const PointSet all = data::generate_uniform(dom, 120, 13);
  const PointSet first(all.begin(), all.begin() + 60);
  const PointSet second(all.begin() + 60, all.end());
  Params params;
  params.hs = 3.0;
  params.ht = 2.0;
  const Result r_all = estimate(all, dom, params, Algorithm::kPBSym);
  const Result r_a = estimate(first, dom, params, Algorithm::kPBSym);
  const Result r_b = estimate(second, dom, params, Algorithm::kPBSym);
  double max_err = 0.0;
  for (std::int64_t i = 0; i < r_all.grid.size(); ++i) {
    const double combined = 0.5 * static_cast<double>(r_a.grid.data()[i]) +
                            0.5 * static_cast<double>(r_b.grid.data()[i]);
    max_err = std::max(
        max_err, std::abs(combined - static_cast<double>(r_all.grid.data()[i])));
  }
  EXPECT_LE(max_err, 10.0 * testing::grid_tolerance(r_all.grid));
}

TEST(Properties, TemporalResolutionRefinementConverges) {
  // Halving tres doubles Gt but the density at matching sample locations
  // stays comparable (the estimate approximates a continuous function).
  const DomainSpec coarse{0, 0, 0, 16, 16, 16, 1.0, 2.0};
  const DomainSpec fine{0, 0, 0, 16, 16, 16, 1.0, 0.5};
  PointSet pts = {Point{8.2, 8.4, 8.1}, Point{7.7, 8.9, 7.5}};
  Params params;
  params.hs = 5.0;
  params.ht = 5.0;
  const Result rc = estimate(pts, coarse, params, Algorithm::kPBSym);
  const Result rf = estimate(pts, fine, params, Algorithm::kPBSym);
  // Compare at the same physical location: coarse voxel T=4 center = t 9.0;
  // fine voxel center t 9.0 is T=17 ((9.0-0.25)/0.5 = 17.5 -> T=17 center 8.75).
  const VoxelMapper mc(coarse), mf(fine);
  const Voxel vc = mc.voxel_of(Point{8.5, 8.5, 9.0});
  const Voxel vf = mf.voxel_of(Point{8.5, 8.5, 9.0});
  const float dc = rc.grid.at(vc.x, vc.y, vc.t);
  const float df = rf.grid.at(vf.x, vf.y, vf.t);
  EXPECT_NEAR(dc, df, 0.25 * std::max(dc, df));
}

}  // namespace
}  // namespace stkde
