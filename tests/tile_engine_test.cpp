// PB-TILE: the tile-major scatter engine and its invariant-table cache.
//
// The engine is a reorganization of PB-SYM's arithmetic — tile-major
// traversal, Morton-sorted points, offset-keyed table sharing — so the
// keystone assertions are equivalences: tile order vs arrival order at
// float-reordering tolerance, and the quantized cache vs the exact path at
// 1e-5 for every kernel when the data sits on a sub-voxel lattice the
// cache's bins resolve.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/detail/common.hpp"
#include "core/detail/tile_scatter.hpp"
#include "helpers.hpp"
#include "partition/tile_order.hpp"

namespace stkde {
namespace {

using testing::TinyInstance;
using testing::make_tiny;

double rel_tolerance(const DensityGrid& ref, double rel) {
  return rel * static_cast<double>(std::max(ref.max_value(), 0.0f)) + 1e-12;
}

// --- Morton keys and the tiling ---------------------------------------------

TEST(TileOrder, MortonInterleavesBits) {
  EXPECT_EQ(morton2(0, 0), 0u);
  EXPECT_EQ(morton2(1, 0), 1u);
  EXPECT_EQ(morton2(0, 1), 2u);
  EXPECT_EQ(morton2(1, 1), 3u);
  EXPECT_EQ(morton2(2, 1), 6u);
  EXPECT_EQ(morton2(3, 3), 15u);
  EXPECT_EQ(morton2(0xffffu, 0), 0x55555555u);
  EXPECT_EQ(morton2(0, 0xffffu), 0xaaaaaaaau);
}

TEST(TileOrder, ScatterKeyOrdersNearbyVoxelsTogether) {
  // Z-order locality: the key distance of adjacent voxels is smaller than
  // that of far-apart ones at matching t.
  const auto a = scatter_order_key(Voxel{10, 10, 5});
  const auto b = scatter_order_key(Voxel{11, 10, 5});
  const auto c = scatter_order_key(Voxel{200, 300, 5});
  EXPECT_LT(a < b ? b - a : a - b, a < c ? c - a : a - c);
  // t is the tiebreak within a column.
  EXPECT_LT(scatter_order_key(Voxel{10, 10, 5}),
            scatter_order_key(Voxel{10, 10, 6}));
}

TEST(TileOrder, TileDecompositionRespectsByteBudget) {
  const GridDims dims{64, 48, 16};
  const std::int64_t budget = 32 * 1024;
  const Decomposition tiles = tile_decomposition(dims, budget, sizeof(float));
  EXPECT_EQ(tiles.c(), 1) << "temporal axis must stay unsplit";
  for (std::int64_t v = 0; v < tiles.count(); ++v) {
    const Extent3 sub = tiles.subdomain(v);
    EXPECT_LE(sub.volume() * static_cast<std::int64_t>(sizeof(float)), budget)
        << "tile " << v << " exceeds the L2 budget";
  }
  // A budget below one spatial column degrades to 1-column tiles, not zero.
  const Decomposition fine = tile_decomposition(dims, 1, sizeof(float));
  EXPECT_EQ(fine.a(), dims.gx);
  EXPECT_EQ(fine.b(), dims.gy);
}

TEST(TileOrder, BinsAreMortonSortedAndCoverAllPoints) {
  TinyInstance t = make_tiny(150, 3, 2);
  const VoxelMapper map(t.domain);
  const Decomposition tiles = tile_decomposition(map.dims(), 4096, 4);
  const PointBins bins =
      tile_major_bins(t.points, map, tiles, 3, 2, TileBinRule::kOwner);
  EXPECT_EQ(bins.total_entries, t.points.size());
  std::size_t seen = 0;
  for (const auto& bin : bins.bins) {
    seen += bin.size();
    for (std::size_t i = 1; i < bin.size(); ++i)
      EXPECT_LE(scatter_order_key(map.voxel_of(t.points[bin[i - 1]])),
                scatter_order_key(map.voxel_of(t.points[bin[i]])));
  }
  EXPECT_EQ(seen, t.points.size());
}

// --- Engine equivalences ----------------------------------------------------

TEST(TileEngine, TileOrderMatchesArrivalOrder) {
  // The tentpole equivalence: PB-TILE (exact cache) is a pure reordering of
  // PB-SYM's per-point scatter, so the grids agree to float-reorder noise —
  // across tile sizes, including degenerate single-column tiles, and with
  // and without padded rows.
  TinyInstance t = make_tiny(200, 4, 2);
  const Result sym = estimate(t.points, t.domain, t.params, Algorithm::kPBSym);
  const double tol = rel_tolerance(sym.grid, 1e-5);
  for (const std::int64_t tile_bytes : {std::int64_t{1} << 20, std::int64_t{4096},
                                        std::int64_t{1}}) {
    for (const bool pad : {true, false}) {
      t.params.tile.tile_bytes = tile_bytes;
      t.params.tile.pad_rows = pad;
      const Result tile =
          estimate(t.points, t.domain, t.params, Algorithm::kPBTile);
      EXPECT_LE(tile.grid.max_abs_diff(sym.grid), tol)
          << "tile_bytes=" << tile_bytes << " pad=" << pad;
      EXPECT_GT(tile.diag.table_lookups, 0);
      EXPECT_GE(tile.diag.table_lookups, tile.diag.table_fills);
      EXPECT_GE(tile.diag.replication_factor, 1.0);
    }
  }
}

class TileCacheKernelTest : public ::testing::TestWithParam<std::string> {};

TEST_P(TileCacheKernelTest, QuantizedCacheMatchesExactOnLatticeData) {
  // The satellite equivalence: with events on an S=4 sub-voxel lattice and
  // Q=8 bins (Q >= S resolves every lattice offset into its own bin), the
  // quantized cache is *exact* — every hit reuses a table filled at the
  // identical offset — so cached and exact runs agree within 1e-5.
  TinyInstance t = make_tiny(150, 4, 2);
  t.params.kernel = kernels::kernel_by_name(GetParam());
  t.points = data::snap_to_lattice(t.points, t.domain, 4);
  const Result exact =
      estimate(t.points, t.domain, t.params, Algorithm::kPBTile);
  t.params.tile.table_quant = 8;
  const Result cached =
      estimate(t.points, t.domain, t.params, Algorithm::kPBTile);
  EXPECT_LE(cached.grid.max_abs_diff(exact.grid),
            rel_tolerance(exact.grid, 1e-5));
  // Lattice data has at most 16 distinct offsets: the cache must actually
  // hit, and lane stats must be accumulated per fill, not per lookup.
  EXPECT_GT(cached.diag.table_cache_hit_rate(), 0.5);
  EXPECT_EQ(cached.diag.table_cells,
            cached.diag.table_fills * 9LL * 9LL);  // (2*4+1)^2 per fill
  // Against PB-SYM too (the cross-algorithm anchor).
  const Result sym = estimate(t.points, t.domain, t.params, Algorithm::kPBSym);
  EXPECT_LE(cached.grid.max_abs_diff(sym.grid), rel_tolerance(sym.grid, 1e-5));
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, TileCacheKernelTest,
    ::testing::Values("epanechnikov", "as-printed", "uniform", "triangular",
                      "quartic", "gaussian-truncated"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string s = info.param;
      for (auto& c : s)
        if (c == '-') c = '_';
      return s;
    });

TEST(TileEngine, QuantizedCacheErrorIsBoundedOnContinuousData) {
  // Off-lattice data pays the documented offset perturbation (< 1/Q voxel
  // per axis). The grid-level effect must stay small and the cache must
  // still hit (64 bins for 250 points, plus tile-replicated lookups).
  TinyInstance t = make_tiny(250, 4, 2);
  const Result exact =
      estimate(t.points, t.domain, t.params, Algorithm::kPBTile);
  t.params.tile.table_quant = 8;
  const Result cached =
      estimate(t.points, t.domain, t.params, Algorithm::kPBTile);
  EXPECT_LE(cached.grid.max_abs_diff(exact.grid),
            rel_tolerance(exact.grid, 0.05));
  EXPECT_GT(cached.diag.table_cache_hit_rate(), 0.3);
}

TEST(TileEngine, OutOfLatticeOffsetsBypassQuantization) {
  // Points outside the domain clamp to border voxels, putting their offsets
  // outside [0, 1]; the quantized cache must serve them through the exact
  // scratch path, not a nearest lattice bin.
  TinyInstance t = make_tiny(1, 3, 2);
  t.points = {Point{-1.7, 10.0, 8.0}, Point{25.3, -2.2, 8.0},
              Point{12.0, 21.8, 17.3}, Point{12.0, 10.0, -0.4}};
  const Result sym = estimate(t.points, t.domain, t.params, Algorithm::kPBSym);
  t.params.tile.table_quant = 8;
  const Result cached =
      estimate(t.points, t.domain, t.params, Algorithm::kPBTile);
  EXPECT_LE(cached.grid.max_abs_diff(sym.grid), rel_tolerance(sym.grid, 1e-5));
}

TEST(TileEngine, ExactCacheHitsOnLatticeData) {
  // Even the exact-keyed cache (quant == 0) hits when data is recorded at
  // fixed resolution: identical offsets have identical bit patterns.
  TinyInstance t = make_tiny(200, 4, 2);
  t.points = data::snap_to_lattice(t.points, t.domain, 4);
  const Result r = estimate(t.points, t.domain, t.params, Algorithm::kPBTile);
  EXPECT_GT(r.diag.table_cache_hit_rate(), 0.5);
  EXPECT_LT(r.diag.table_fills, r.diag.table_lookups / 2);
}

TEST(TileEngine, DiagnosticsAreConsistent) {
  TinyInstance t = make_tiny(120, 4, 2);
  const Result r = estimate(t.points, t.domain, t.params, Algorithm::kPBTile);
  EXPECT_EQ(r.diag.algorithm, "PB-TILE");
  EXPECT_GT(r.diag.subdomains, 0);
  EXPECT_GE(r.diag.table_cells, r.diag.span_cells);
  EXPECT_GE(r.diag.span_cells, r.diag.table_nonzero);
  EXPECT_GT(r.diag.table_nonzero, 0);
  EXPECT_GE(r.diag.table_lookups, r.diag.table_fills);
  EXPECT_GT(r.diag.table_fills, 0);
  const double hr = r.diag.table_cache_hit_rate();
  EXPECT_GE(hr, 0.0);
  EXPECT_LE(hr, 1.0);
}

}  // namespace
}  // namespace stkde
