// PB-TILE: the tile-major scatter engine and its invariant-table cache.
//
// The engine is a reorganization of PB-SYM's arithmetic — tile-major
// traversal, Morton-sorted points, offset-keyed table sharing — so the
// keystone assertions are equivalences: tile order vs arrival order at
// float-reordering tolerance, and the quantized cache vs the exact path at
// 1e-5 for every kernel when the data sits on a sub-voxel lattice the
// cache's bins resolve.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/detail/common.hpp"
#include "core/detail/tile_scatter.hpp"
#include "helpers.hpp"
#include "partition/tile_order.hpp"

namespace stkde {
namespace {

using testing::TinyInstance;
using testing::make_tiny;

double rel_tolerance(const DensityGrid& ref, double rel) {
  return rel * static_cast<double>(std::max(ref.max_value(), 0.0f)) + 1e-12;
}

// --- Morton keys and the tiling ---------------------------------------------

TEST(TileOrder, MortonInterleavesBits) {
  EXPECT_EQ(morton2(0, 0), 0u);
  EXPECT_EQ(morton2(1, 0), 1u);
  EXPECT_EQ(morton2(0, 1), 2u);
  EXPECT_EQ(morton2(1, 1), 3u);
  EXPECT_EQ(morton2(2, 1), 6u);
  EXPECT_EQ(morton2(3, 3), 15u);
  EXPECT_EQ(morton2(0xffffu, 0), 0x55555555u);
  EXPECT_EQ(morton2(0, 0xffffu), 0xaaaaaaaau);
}

// Static-analysis regression (docs/ANALYSIS.md): the Morton/bias math was
// flagged as a signed-shift-UB suspect. It is UB-free by construction —
// spread_bits16 works in uint32, biased16 biases through int64 before the
// narrowing — and this test drives the full extreme-input envelope so the
// UBSan CI job (-fsanitize=undefined, non-recovering) proves it stays
// that way. Expected values pin today's clamp-and-interleave semantics.
TEST(TileOrder, ScatterKeyExtremeCoordinatesAreUbFreeAndOrdered) {
  constexpr std::int32_t kMin = std::numeric_limits<std::int32_t>::min();
  constexpr std::int32_t kMax = std::numeric_limits<std::int32_t>::max();
  // Both coordinate signs saturate order-preservingly at the 16-bit bias
  // rails instead of wrapping.
  const auto lo = scatter_order_key(Voxel{kMin, kMin, kMin});
  const auto hi = scatter_order_key(Voxel{kMax, kMax, kMax});
  EXPECT_EQ(lo, 0u);
  EXPECT_EQ(hi, (std::uint64_t{0xffffffffu} << 16) | 0xffffu);
  EXPECT_LT(lo, hi);
  // The bias rails themselves: -0x8000 maps to 0, 0x7fff to 0xffff.
  EXPECT_EQ(scatter_order_key(Voxel{-0x8000, -0x8000, -0x8000}), 0u);
  EXPECT_EQ(scatter_order_key(Voxel{0x7fff, 0x7fff, 0x7fff}), hi);
  // Monotone in each axis across the sign boundary (the clamped-voxel
  // case recovery replays hit: coordinates slightly below 0).
  EXPECT_LT(scatter_order_key(Voxel{-1, 0, 0}), scatter_order_key(Voxel{0, 0, 0}));
  EXPECT_LT(scatter_order_key(Voxel{0, -1, 0}), scatter_order_key(Voxel{0, 0, 0}));
  EXPECT_LT(scatter_order_key(Voxel{0, 0, -1}), scatter_order_key(Voxel{0, 0, 0}));
  // Full-width interleave stays inside 32 bits before the t-shift: the
  // top Morton bit is y's bit 15 at position 31, never the sign bit of
  // anything signed.
  EXPECT_EQ(morton2(0xffffu, 0xffffu), 0xffffffffu);
}

TEST(TileOrder, ScatterKeyOrdersNearbyVoxelsTogether) {
  // Z-order locality: the key distance of adjacent voxels is smaller than
  // that of far-apart ones at matching t.
  const auto a = scatter_order_key(Voxel{10, 10, 5});
  const auto b = scatter_order_key(Voxel{11, 10, 5});
  const auto c = scatter_order_key(Voxel{200, 300, 5});
  EXPECT_LT(a < b ? b - a : a - b, a < c ? c - a : a - c);
  // t is the tiebreak within a column.
  EXPECT_LT(scatter_order_key(Voxel{10, 10, 5}),
            scatter_order_key(Voxel{10, 10, 6}));
}

TEST(TileOrder, TileDecompositionRespectsByteBudget) {
  const GridDims dims{64, 48, 16};
  const std::int64_t budget = 32 * 1024;
  const Decomposition tiles = tile_decomposition(dims, budget, sizeof(float));
  EXPECT_EQ(tiles.c(), 1) << "temporal axis must stay unsplit";
  for (std::int64_t v = 0; v < tiles.count(); ++v) {
    const Extent3 sub = tiles.subdomain(v);
    EXPECT_LE(sub.volume() * static_cast<std::int64_t>(sizeof(float)), budget)
        << "tile " << v << " exceeds the L2 budget";
  }
  // A budget below one spatial column degrades to 1-column tiles, not zero.
  const Decomposition fine = tile_decomposition(dims, 1, sizeof(float));
  EXPECT_EQ(fine.a(), dims.gx);
  EXPECT_EQ(fine.b(), dims.gy);
}

TEST(TileOrder, TileDecompositionBudgetsThePaddedRowStride) {
  // Regression: PB-TILE allocates its grid with RowPad::kCacheLine, so a
  // column occupies row_stride() elements, not gt. Budgeting the packed gt
  // silently oversized tiles — here gt=3 floats (12 B) pads to 16 (64 B),
  // a 5.3x understatement of every column.
  const GridDims dims{64, 48, 3};
  const std::int64_t budget = 32 * 1024;
  DensityGrid grid;
  grid.allocate(Extent3::whole(dims), RowPad::kCacheLine);
  ASSERT_TRUE(grid.padded());
  const Decomposition tiles =
      tile_decomposition(dims, budget, sizeof(float), grid.row_stride());
  for (std::int64_t v = 0; v < tiles.count(); ++v) {
    const Extent3 sub = tiles.subdomain(v);
    const std::int64_t tile_bytes =
        static_cast<std::int64_t>(sub.nx()) * sub.ny() * grid.row_stride() *
        static_cast<std::int64_t>(sizeof(float));
    EXPECT_LE(tile_bytes, budget) << "tile " << v << " exceeds the L2 budget";
  }
  // The packed-stride tiling (the old behaviour) demonstrably blows the
  // budget on this grid — the fix must produce a strictly finer tiling.
  const Decomposition packed = tile_decomposition(dims, budget, sizeof(float));
  const Extent3 sub0 = packed.subdomain(std::int64_t{0});
  EXPECT_GT(static_cast<std::int64_t>(sub0.nx()) * sub0.ny() *
                grid.row_stride() * static_cast<std::int64_t>(sizeof(float)),
            budget)
      << "test instance no longer demonstrates the padded-stride bug";
  EXPECT_GT(tiles.count(), packed.count());
}

TEST(TileOrder, BinsAreMortonSortedAndCoverAllPoints) {
  TinyInstance t = make_tiny(150, 3, 2);
  const VoxelMapper map(t.domain);
  const Decomposition tiles = tile_decomposition(map.dims(), 4096, 4);
  const PointBins bins =
      tile_major_bins(t.points, map, tiles, 3, 2, TileBinRule::kOwner);
  EXPECT_EQ(bins.total_entries, t.points.size());
  std::size_t seen = 0;
  for (const auto& bin : bins.bins) {
    seen += bin.size();
    for (std::size_t i = 1; i < bin.size(); ++i)
      EXPECT_LE(scatter_order_key(map.voxel_of(t.points[bin[i - 1]])),
                scatter_order_key(map.voxel_of(t.points[bin[i]])));
  }
  EXPECT_EQ(seen, t.points.size());
}

// --- Engine equivalences ----------------------------------------------------

TEST(TileEngine, TileOrderMatchesArrivalOrder) {
  // The tentpole equivalence: PB-TILE (exact cache) is a pure reordering of
  // PB-SYM's per-point scatter, so the grids agree to float-reorder noise —
  // across tile sizes, including degenerate single-column tiles, and with
  // and without padded rows.
  TinyInstance t = make_tiny(200, 4, 2);
  const Result sym = estimate(t.points, t.domain, t.params, Algorithm::kPBSym);
  const double tol = rel_tolerance(sym.grid, 1e-5);
  for (const std::int64_t tile_bytes : {std::int64_t{1} << 20, std::int64_t{4096},
                                        std::int64_t{1}}) {
    for (const bool pad : {true, false}) {
      t.params.tile.tile_bytes = tile_bytes;
      t.params.tile.pad_rows = pad;
      const Result tile =
          estimate(t.points, t.domain, t.params, Algorithm::kPBTile);
      EXPECT_LE(tile.grid.max_abs_diff(sym.grid), tol)
          << "tile_bytes=" << tile_bytes << " pad=" << pad;
      EXPECT_GT(tile.diag.table_lookups, 0);
      EXPECT_GE(tile.diag.table_lookups, tile.diag.table_fills);
      EXPECT_GE(tile.diag.replication_factor, 1.0);
    }
  }
}

class TileCacheKernelTest : public ::testing::TestWithParam<std::string> {};

TEST_P(TileCacheKernelTest, QuantizedCacheMatchesExactOnLatticeData) {
  // The satellite equivalence: with events on an S=4 sub-voxel lattice and
  // Q=8 bins (Q >= S resolves every lattice offset into its own bin), the
  // quantized cache is *exact* — every hit reuses a table filled at the
  // identical offset — so cached and exact runs agree within 1e-5.
  TinyInstance t = make_tiny(150, 4, 2);
  t.params.kernel = kernels::kernel_by_name(GetParam());
  t.points = data::snap_to_lattice(t.points, t.domain, 4);
  const Result exact =
      estimate(t.points, t.domain, t.params, Algorithm::kPBTile);
  t.params.tile.table_quant = 8;
  const Result cached =
      estimate(t.points, t.domain, t.params, Algorithm::kPBTile);
  EXPECT_LE(cached.grid.max_abs_diff(exact.grid),
            rel_tolerance(exact.grid, 1e-5));
  // Lattice data has at most 16 distinct offsets: the cache must actually
  // hit, and lane stats must be accumulated per fill, not per lookup.
  EXPECT_GT(cached.diag.table_cache_hit_rate(), 0.5);
  EXPECT_EQ(cached.diag.table_cells,
            cached.diag.table_fills * 9LL * 9LL);  // (2*4+1)^2 per fill
  // Against PB-SYM too (the cross-algorithm anchor).
  const Result sym = estimate(t.points, t.domain, t.params, Algorithm::kPBSym);
  EXPECT_LE(cached.grid.max_abs_diff(sym.grid), rel_tolerance(sym.grid, 1e-5));
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, TileCacheKernelTest,
    ::testing::Values("epanechnikov", "as-printed", "uniform", "triangular",
                      "quartic", "gaussian-truncated"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string s = info.param;
      for (auto& c : s)
        if (c == '-') c = '_';
      return s;
    });

TEST(TileEngine, QuantizedCacheErrorIsBoundedOnContinuousData) {
  // Off-lattice data pays the documented offset perturbation (< 1/Q voxel
  // per axis). The grid-level effect must stay small and the cache must
  // still hit (64 bins for 250 points, plus tile-replicated lookups).
  TinyInstance t = make_tiny(250, 4, 2);
  const Result exact =
      estimate(t.points, t.domain, t.params, Algorithm::kPBTile);
  t.params.tile.table_quant = 8;
  const Result cached =
      estimate(t.points, t.domain, t.params, Algorithm::kPBTile);
  EXPECT_LE(cached.grid.max_abs_diff(exact.grid),
            rel_tolerance(exact.grid, 0.05));
  EXPECT_GT(cached.diag.table_cache_hit_rate(), 0.3);
}

TEST(TileEngine, OutOfLatticeOffsetsBypassQuantization) {
  // Points outside the domain clamp to border voxels, putting their offsets
  // outside [0, 1]; the quantized cache must serve them through the exact
  // scratch path, not a nearest lattice bin.
  TinyInstance t = make_tiny(1, 3, 2);
  t.points = {Point{-1.7, 10.0, 8.0}, Point{25.3, -2.2, 8.0},
              Point{12.0, 21.8, 17.3}, Point{12.0, 10.0, -0.4}};
  const Result sym = estimate(t.points, t.domain, t.params, Algorithm::kPBSym);
  t.params.tile.table_quant = 8;
  const Result cached =
      estimate(t.points, t.domain, t.params, Algorithm::kPBTile);
  EXPECT_LE(cached.grid.max_abs_diff(sym.grid), rel_tolerance(sym.grid, 1e-5));
}

TEST(TileCache, CappedBudgetDoesNotAliasLatticeResidueClasses) {
  // Regression: with Q=16 and data on an S=4 sub-voxel lattice, the 16
  // distinct quantized keys are kx*16 + ky for kx, ky in {0, 4, 8, 12}.
  // When the byte budget caps the cache at 32 slots (< Q^2 = 256), the old
  // linear `key % slots` folded all 16 keys onto the 4 slots {0, 4, 8, 12}
  // — whole residue classes thrashing one slot forever. Routing capped
  // lookups through mix() spreads them; after the first warm-up round the
  // hit rate must be high, not pinned near zero.
  constexpr std::int32_t Hs = 4;
  const std::uint64_t table_bytes = (2 * Hs + 1) * (2 * Hs + 1) * 4 + 64;
  kernels::SpatialTableCache cache(
      kernels::TableCacheConfig{16, 32 * table_bytes}, Hs);
  ASSERT_EQ(cache.slot_count(), 32u) << "budget no longer caps below Q^2";
  const DomainSpec dom{0.0, 0.0, 0.0, 32.0, 32.0, 8.0, 1.0, 1.0};
  const VoxelMapper map(dom);
  const kernels::EpanechnikovKernel k;
  for (int round = 0; round < 8; ++round)
    for (int i = 0; i < 4; ++i)
      for (int j = 0; j < 4; ++j) {
        const Point p{10.0 + (i + 0.125) / 4.0, 10.0 + (j + 0.125) / 4.0, 4.0};
        (void)cache.lookup(k, map, p, 3.0, Hs, 1.0);
      }
  // 16 keys spread over 32 slots: a couple of mix() collisions are fine,
  // residue-class aliasing (hit rate <= ~0.2 here) is not.
  EXPECT_GT(cache.hit_rate(), 0.5);
}

TEST(TileCache, GenerousBudgetKeepsThePerfectLatticeIndex) {
  // When every lattice bin has its own slot (slots == Q^2), the flat index
  // is a perfect hash — distinct bins must never evict each other.
  constexpr std::int32_t Hs = 3;
  kernels::SpatialTableCache cache(
      kernels::TableCacheConfig{8, std::uint64_t{8} << 20}, Hs);
  ASSERT_EQ(cache.slot_count(), 64u);
  const DomainSpec dom{0.0, 0.0, 0.0, 32.0, 32.0, 8.0, 1.0, 1.0};
  const VoxelMapper map(dom);
  const kernels::EpanechnikovKernel k;
  for (int round = 0; round < 3; ++round)
    for (int i = 0; i < 8; ++i)
      for (int j = 0; j < 8; ++j) {
        const Point p{10.0 + (i + 0.5) / 8.0, 10.0 + (j + 0.5) / 8.0, 4.0};
        (void)cache.lookup(k, map, p, 3.0, Hs, 1.0);
      }
  // 64 bins, 3 rounds: exactly 64 fills, everything after is a hit.
  EXPECT_EQ(cache.fills(), 64);
  EXPECT_EQ(cache.lookups(), 3 * 64);
}

TEST(TileCache, NegativeZeroOffsetsShareTheExactKey) {
  // Regression: exact-mode keys bit_cast the raw offsets, and a
  // voxel-boundary point can land on fx = -0.0 (e.g. (p.x - x0)/sres
  // underflowing to negative zero). -0.0 and +0.0 produce bitwise-identical
  // tables, so they must share one slot — the old keys split them.
  constexpr std::int32_t Hs = 3;
  kernels::SpatialTableCache cache(
      kernels::TableCacheConfig{0, std::uint64_t{1} << 20}, Hs);
  const DomainSpec dom{0.0, 0.0, 0.0, 32.0, 32.0, 8.0, 2.0, 1.0};
  const VoxelMapper map(dom);
  const kernels::EpanechnikovKernel k;
  // (p.x - 0)/2 underflows the smallest negative denormal to -0.0; the
  // voxel still clamps to cell 0, so fx == -0.0 while py's fx == +0.0.
  const Point neg{-std::numeric_limits<double>::denorm_min(), 5.0, 4.0};
  const Point pos{0.0, 5.0, 4.0};
  ASSERT_EQ(map.voxel_of(neg).x, map.voxel_of(pos).x);
  (void)cache.lookup(k, map, pos, 3.0, Hs, 1.0);
  const auto second = cache.lookup(k, map, neg, 3.0, Hs, 1.0);
  EXPECT_FALSE(second.filled) << "-0.0 offset missed the +0.0 table";
  EXPECT_EQ(cache.fills(), 1);
}

TEST(TileEngine, ExactCacheHitsOnLatticeData) {
  // Even the exact-keyed cache (quant == 0) hits when data is recorded at
  // fixed resolution: identical offsets have identical bit patterns.
  TinyInstance t = make_tiny(200, 4, 2);
  t.points = data::snap_to_lattice(t.points, t.domain, 4);
  const Result r = estimate(t.points, t.domain, t.params, Algorithm::kPBTile);
  EXPECT_GT(r.diag.table_cache_hit_rate(), 0.5);
  EXPECT_LT(r.diag.table_fills, r.diag.table_lookups / 2);
}

TEST(TileEngine, DiagnosticsAreConsistent) {
  TinyInstance t = make_tiny(120, 4, 2);
  const Result r = estimate(t.points, t.domain, t.params, Algorithm::kPBTile);
  EXPECT_EQ(r.diag.algorithm, "PB-TILE");
  EXPECT_GT(r.diag.subdomains, 0);
  EXPECT_GE(r.diag.table_cells, r.diag.span_cells);
  EXPECT_GE(r.diag.span_cells, r.diag.table_nonzero);
  EXPECT_GT(r.diag.table_nonzero, 0);
  EXPECT_GE(r.diag.table_lookups, r.diag.table_fills);
  EXPECT_GT(r.diag.table_fills, 0);
  const double hr = r.diag.table_cache_hit_rate();
  EXPECT_GE(hr, 0.0);
  EXPECT_LE(hr, 1.0);
}

}  // namespace
}  // namespace stkde
