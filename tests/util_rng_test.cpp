#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace stkde::util {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformStaysInUnitInterval) {
  Xoshiro256 r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Xoshiro256 r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform(-5.0, 3.0);
    EXPECT_GE(u, -5.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Xoshiro256 r(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowStaysInRange) {
  Xoshiro256 r(13);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, BelowCoversAllResidues) {
  Xoshiro256 r(17);
  std::array<int, 8> seen{};
  for (int i = 0; i < 10000; ++i) ++seen[r.below(8)];
  for (const int c : seen) EXPECT_GT(c, 1000);  // ~1250 expected each
}

TEST(Rng, NormalMomentsMatch) {
  Xoshiro256 r(19);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, NormalWithParamsScales) {
  Xoshiro256 r(23);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += r.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(SplitMix, DeterministicAndNonTrivial) {
  SplitMix64 a(0), b(0);
  const auto x = a.next();
  EXPECT_EQ(x, b.next());
  EXPECT_NE(a.next(), x);
}

}  // namespace
}  // namespace stkde::util
