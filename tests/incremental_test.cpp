#include "core/incremental.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/estimator.hpp"
#include "helpers.hpp"

namespace stkde::core {
namespace {

using stkde::testing::grid_tolerance;
using stkde::testing::make_tiny;

TEST(Incremental, SingleBatchMatchesBatchEstimate) {
  const auto t = make_tiny(150, 3, 2);
  IncrementalEstimator inc(t.domain, t.params);
  inc.add(t.points);
  const DensityGrid snap = inc.snapshot();
  const Result batch = estimate(t.points, t.domain, t.params, Algorithm::kPBSym);
  EXPECT_LE(snap.max_abs_diff(batch.grid), grid_tolerance(batch.grid));
  EXPECT_EQ(inc.live_count(), t.points.size());
}

TEST(Incremental, MultipleBatchesMatchCombinedBatch) {
  const auto t = make_tiny(200, 3, 2);
  IncrementalEstimator inc(t.domain, t.params);
  const std::size_t half = t.points.size() / 2;
  inc.add(PointSet(t.points.begin(), t.points.begin() + half));
  inc.add(PointSet(t.points.begin() + half, t.points.end()));
  const Result batch = estimate(t.points, t.domain, t.params, Algorithm::kPBSym);
  EXPECT_LE(inc.snapshot().max_abs_diff(batch.grid),
            grid_tolerance(batch.grid));
}

TEST(Incremental, RemoveUndoesAdd) {
  const auto t = make_tiny(100, 3, 2);
  IncrementalEstimator inc(t.domain, t.params);
  inc.add(t.points);
  inc.remove(t.points);
  EXPECT_EQ(inc.live_count(), 0u);
  // Raw sums cancel to float roundoff around zero.
  float max_abs = 0.0f;
  for (std::int64_t i = 0; i < inc.raw().size(); ++i)
    max_abs = std::max(max_abs, std::abs(inc.raw().data()[i]));
  EXPECT_LE(max_abs, 1e-5f);
  // Snapshot of an empty stream is exactly zero (n = 0 short-circuits).
  EXPECT_DOUBLE_EQ(inc.snapshot().sum(), 0.0);
}

TEST(Incremental, RemovalOfSubsetMatchesBatchOfRemainder) {
  const auto t = make_tiny(120, 3, 2);
  IncrementalEstimator inc(t.domain, t.params);
  inc.add(t.points);
  const PointSet gone(t.points.begin(), t.points.begin() + 40);
  inc.remove(gone);
  const PointSet kept(t.points.begin() + 40, t.points.end());
  const Result batch = estimate(kept, t.domain, t.params, Algorithm::kPBSym);
  EXPECT_EQ(inc.live_count(), kept.size());
  // Cancellation noise is bounded by the *full* set's peak, not the
  // remainder's, so scale tolerance accordingly.
  const Result full = estimate(t.points, t.domain, t.params, Algorithm::kPBSym);
  EXPECT_LE(inc.snapshot().max_abs_diff(batch.grid),
            3.0 * grid_tolerance(full.grid));
}

TEST(Incremental, SlidingWindowMatchesWindowBatch) {
  const auto t = make_tiny(1, 3, 2);
  // A stream ordered by time: event i at t = i * 0.1.
  PointSet stream;
  for (int i = 0; i < 160; ++i)
    stream.push_back(Point{2.0 + (i * 7) % 20, 2.0 + (i * 3) % 16,
                           i * 0.1});
  IncrementalEstimator inc(t.domain, t.params);
  const double window = 8.0;
  std::size_t fed = 0;
  const std::size_t chunk = 40;
  while (fed < stream.size()) {
    const std::size_t hi = std::min(stream.size(), fed + chunk);
    const PointSet batch(stream.begin() + fed, stream.begin() + hi);
    const double now = batch.back().t;
    inc.advance_window(batch, now - window);
    fed = hi;
  }
  // Reference: batch estimate over exactly the live window.
  PointSet live;
  const double cutoff = stream.back().t - window;
  for (const auto& p : stream)
    if (p.t >= cutoff) live.push_back(p);
  ASSERT_EQ(inc.live_count(), live.size());
  const Result batch = estimate(live, t.domain, t.params, Algorithm::kPBSym);
  const Result full = estimate(stream, t.domain, t.params, Algorithm::kPBSym);
  EXPECT_LE(inc.snapshot().max_abs_diff(batch.grid),
            5.0 * grid_tolerance(full.grid));
}

// Regression for the sliding-window retirement bias: the old engine popped
// the arrival-order deque only while the *front* was expired, so a late
// (out-of-order) arrival sitting behind a newer event was never retired and
// biased the density permanently. The time-bucketed index retires by
// timestamp, not arrival position.
TEST(Incremental, OutOfOrderFeedFullyRetires) {
  const auto t = make_tiny(1, 3, 2);
  IncrementalEstimator inc(t.domain, t.params);
  // Deliver events with deliberately scrambled timestamps: each batch holds
  // a *newer* event before an *older* one, so the old deque's front check
  // stalls on the newer event and strands the late arrival behind it.
  PointSet all;
  for (int i = 0; i < 30; ++i) {
    const double late = 0.5 + 0.4 * i;   // out-of-order: older than `now`
    const double now = 8.0 + 0.2 * i;
    const PointSet batch{Point{4.0 + i % 12, 3.0 + i % 9, now},
                         Point{6.0 + i % 10, 5.0 + i % 7, late}};
    all.insert(all.end(), batch.begin(), batch.end());
    inc.advance_window(batch, 0.0);
  }
  ASSERT_EQ(inc.live_count(), all.size());
  // Slide the window past every event, late arrivals included.
  const std::size_t retired = inc.advance_window({}, 1e9);
  EXPECT_EQ(retired, all.size());
  EXPECT_EQ(inc.live_count(), 0u);
  float max_abs = 0.0f;
  for (std::int64_t i = 0; i < inc.raw().size(); ++i)
    max_abs = std::max(max_abs, std::abs(inc.raw().data()[i]));
  EXPECT_LE(max_abs, 1e-4f);
  EXPECT_DOUBLE_EQ(inc.snapshot().sum(), 0.0);
}

// The second face of the same bug: an incoming event already older than the
// cutoff was added and could never be removed. It must never be scattered.
TEST(Incremental, DeadOnArrivalEventsNeverEnterTheGrid) {
  const auto t = make_tiny(1, 3, 2);
  IncrementalEstimator inc(t.domain, t.params);
  const PointSet stale{Point{5.0, 5.0, 1.0}, Point{7.0, 6.0, 2.0}};
  const std::size_t retired = inc.advance_window(stale, 10.0);
  EXPECT_EQ(retired, stale.size());
  EXPECT_EQ(inc.live_count(), 0u);
  EXPECT_EQ(inc.stats().dead_on_arrival, stale.size());
  // Never scattered at all: the raw grid is still exactly zero.
  EXPECT_EQ(inc.raw().max_value(), 0.0f);
  EXPECT_DOUBLE_EQ(inc.raw().sum(), 0.0);
}

TEST(Incremental, RemoveTakesOneInstancePerRequest) {
  const auto t = make_tiny(1, 3, 2);
  IncrementalEstimator inc(t.domain, t.params);
  const Point p{5.0, 5.0, 4.0};
  inc.add(PointSet{p, p, p});
  EXPECT_EQ(inc.live_count(), 3u);
  // Two requests remove exactly two of the three duplicates.
  EXPECT_EQ(inc.remove(PointSet{p, p}), 2u);
  EXPECT_EQ(inc.live_count(), 1u);
  // The survivor still matches a one-point batch estimate.
  const Result batch = estimate(PointSet{p}, t.domain, t.params,
                                Algorithm::kPBSym);
  EXPECT_LE(inc.snapshot().max_abs_diff(batch.grid),
            3.0 * grid_tolerance(batch.grid));
}

TEST(Incremental, RemoveOfUntrackedEventIsANoOp) {
  const auto t = make_tiny(80, 3, 2);
  IncrementalEstimator inc(t.domain, t.params);
  inc.add(t.points);
  const DensityGrid before = inc.snapshot();
  // Never-added event: ignored instead of biasing the density negative.
  EXPECT_EQ(inc.remove(PointSet{Point{1.0, 1.0, 1.0}}), 0u);
  EXPECT_EQ(inc.stats().remove_misses, 1u);
  EXPECT_EQ(inc.live_count(), t.points.size());
  EXPECT_DOUBLE_EQ(inc.snapshot().max_abs_diff(before), 0.0);
}

// Sharded concurrent ingest must be numerically equivalent to the serial
// engine: same feed, P in {1, 4}, snapshots within 1e-5 relative.
TEST(Incremental, ShardedIngestMatchesSerial) {
  const auto t = make_tiny(400, 3, 2);
  PointSet stream = t.points;
  std::sort(stream.begin(), stream.end(),
            [](const Point& a, const Point& b) { return a.t < b.t; });

  IncrementalEstimator serial(t.domain, t.params);
  StreamConfig sharded_cfg;
  sharded_cfg.threads = 4;
  sharded_cfg.tiles = DecompRequest{4, 4, 1};
  IncrementalEstimator sharded(t.domain, t.params, sharded_cfg);
  // A third engine with a tiny replica threshold forces the PD-REP
  // hotspot-split path on every batch.
  StreamConfig rep_cfg = sharded_cfg;
  rep_cfg.threads = 2;
  rep_cfg.replicate_threshold = 4;
  IncrementalEstimator replicated(t.domain, t.params, rep_cfg);

  const double window = 6.0;
  const std::size_t chunk = 80;
  for (std::size_t lo = 0; lo < stream.size(); lo += chunk) {
    const std::size_t hi = std::min(stream.size(), lo + chunk);
    const PointSet batch(stream.begin() + lo, stream.begin() + hi);
    const double cutoff = batch.back().t - window;
    serial.advance_window(batch, cutoff);
    sharded.advance_window(batch, cutoff);
    replicated.advance_window(batch, cutoff);
  }
  ASSERT_EQ(sharded.live_count(), serial.live_count());
  ASSERT_EQ(replicated.live_count(), serial.live_count());
  EXPECT_GT(replicated.stats().replica_tasks, 0u);
  const DensityGrid ref = serial.snapshot();
  const double peak = static_cast<double>(ref.max_value());
  ASSERT_GT(peak, 0.0);
  EXPECT_LE(sharded.snapshot().max_abs_diff(ref), 1e-5 * peak);
  EXPECT_LE(replicated.snapshot().max_abs_diff(ref), 1e-5 * peak);
}

TEST(Incremental, ShardedSingleBatchMatchesBatchEstimate) {
  const auto t = make_tiny(150, 3, 2);
  StreamConfig cfg;
  cfg.threads = 4;
  cfg.tiles = DecompRequest{4, 4, 1};
  IncrementalEstimator inc(t.domain, t.params, cfg);
  inc.add(t.points);
  const Result batch = estimate(t.points, t.domain, t.params, Algorithm::kPBSym);
  EXPECT_LE(inc.snapshot().max_abs_diff(batch.grid),
            grid_tolerance(batch.grid));
  EXPECT_EQ(inc.live_count(), t.points.size());
}

// Drift checkpoints: after enough +/- churn the engine rebuilds the grid
// from the live set, so cancellation error cannot accumulate unboundedly.
TEST(Incremental, CheckpointRebuildsAndStaysAccurate) {
  const auto t = make_tiny(1, 3, 2);
  StreamConfig cfg;
  cfg.checkpoint_retires = 64;  // rebuild every ~64 retired events
  // This stream deliberately runs past the temporal domain (clamped-voxel
  // scatter, matching the batch reference); admission would quarantine it.
  cfg.admission = false;
  IncrementalEstimator inc(t.domain, t.params, cfg);
  PointSet stream;
  for (int i = 0; i < 400; ++i)
    stream.push_back(Point{2.0 + (i * 7) % 20, 2.0 + (i * 3) % 16, i * 0.05});
  const double window = 4.0;
  const std::size_t chunk = 40;
  for (std::size_t lo = 0; lo < stream.size(); lo += chunk) {
    const std::size_t hi = std::min(stream.size(), lo + chunk);
    const PointSet batch(stream.begin() + lo, stream.begin() + hi);
    inc.advance_window(batch, batch.back().t - window);
  }
  EXPECT_GE(inc.stats().checkpoints, 1u);
  PointSet live;
  const double cutoff = stream.back().t - window;
  for (const auto& p : stream)
    if (p.t >= cutoff) live.push_back(p);
  ASSERT_EQ(inc.live_count(), live.size());
  const Result batch = estimate(live, t.domain, t.params, Algorithm::kPBSym);
  EXPECT_LE(inc.snapshot().max_abs_diff(batch.grid),
            5.0 * grid_tolerance(batch.grid));
}

// A forced checkpoint clears accumulated cancellation residue: after full
// retirement the raw grid returns to *exact* zeros (fill, no live events).
TEST(Incremental, ManualCheckpointClearsResidue) {
  const auto t = make_tiny(100, 3, 2);
  IncrementalEstimator inc(t.domain, t.params);
  inc.add(t.points);
  inc.remove(t.points);
  inc.checkpoint();
  EXPECT_EQ(inc.live_count(), 0u);
  EXPECT_DOUBLE_EQ(inc.raw().sum(), 0.0);
  EXPECT_EQ(inc.raw().max_value(), 0.0f);
}

TEST(Incremental, DensityAtMatchesSnapshot) {
  const auto t = make_tiny(60, 3, 2);
  IncrementalEstimator inc(t.domain, t.params);
  inc.add(t.points);
  const DensityGrid snap = inc.snapshot();
  const VoxelMapper map(t.domain);
  const Voxel v = map.voxel_of(t.points.front());
  EXPECT_FLOAT_EQ(inc.density_at(v), snap.at(v.x, v.y, v.t));
}

// Regression for the serve-layer straddle bug: density_at() used to re-read
// the freshest publish on every call, so two probes in one logical request
// could straddle a publish and see inconsistent (raw, n) pairs. Reads must
// go through one pinned state.
TEST(Incremental, PinnedReadsNeverStraddleAPublish) {
  const auto t = make_tiny(1, 3, 2);
  const Point p0{12.0, 10.0, 8.0};
  const Point far{2.0, 2.0, 2.0};
  const VoxelMapper map(t.domain);
  const Voxel v0 = map.voxel_of(p0);

  IncrementalEstimator inc(t.domain, t.params);
  inc.add(PointSet{p0});
  const float c0 = inc.density_at(v0);
  ASSERT_GT(c0, 0.0f);

  const ReaderPin pin = inc.pin();
  ASSERT_TRUE(pin.valid());
  EXPECT_EQ(pin.live(), 1u);
  const std::uint64_t seq0 = pin.seq();

  // Publish three more events far from v0: raw at v0 is untouched, but the
  // normalizer becomes 4, so the *live* density at v0 drops to c0/4.
  inc.add(PointSet{far, far, far});
  EXPECT_NEAR(inc.density_at(v0), c0 / 4.0f, 1e-6f * c0);

  // The pin still answers from its own version: same seq, same n, same
  // density — n and raw can never come from different publishes.
  EXPECT_EQ(pin.seq(), seq0);
  EXPECT_EQ(pin.live(), 1u);
  EXPECT_FLOAT_EQ(pin.density_at(v0), c0);
  EXPECT_FLOAT_EQ(static_cast<float>(
                      static_cast<double>(pin.raw().at(v0.x, v0.y, v0.t)) *
                      pin.norm()),
                  c0);
}

TEST(Incremental, DensityAtOutsideGridIsZero) {
  const auto t = make_tiny(20, 3, 2);
  IncrementalEstimator inc(t.domain, t.params);
  inc.add(t.points);
  EXPECT_FLOAT_EQ(inc.density_at(Voxel{-5, 0, 0}), 0.0f);
  EXPECT_FLOAT_EQ(inc.density_at(Voxel{0, 0, 1 << 20}), 0.0f);
}

TEST(Incremental, PublishHookSeesEveryConsistentPublish) {
  const auto t = make_tiny(1, 3, 2);
  const Point p0{12.0, 10.0, 8.0};
  const VoxelMapper map(t.domain);
  const Voxel v0 = map.voxel_of(p0);

  IncrementalEstimator inc(t.domain, t.params);
  inc.add(PointSet{p0});
  const float c0 = inc.density_at(v0);

  std::uint64_t calls = 0;
  std::uint64_t last_seq = 0;
  int violations = 0;
  inc.set_publish_hook([&](const ReaderPin& pin) {
    ++calls;
    if (pin.seq() <= last_seq) ++violations;  // seqs strictly increase
    last_seq = pin.seq();
    // Identical-point stream: every consistent state has density c0 at v0.
    if (std::abs(pin.density_at(v0) - c0) > 1e-3f * c0) ++violations;
  });
  const std::uint64_t before = inc.stats().publishes;
  for (int i = 0; i < 5; ++i) inc.add(PointSet(8, p0));
  inc.checkpoint();
  EXPECT_EQ(calls, inc.stats().publishes - before);
  EXPECT_EQ(violations, 0);
  inc.set_publish_hook(nullptr);
  inc.add(PointSet(8, p0));
  EXPECT_EQ(calls, 6u);  // detached: no further calls
}

TEST(Incremental, EmptyStreamProbes) {
  const auto t = make_tiny(1, 2, 1);
  IncrementalEstimator inc(t.domain, t.params);
  EXPECT_EQ(inc.live_count(), 0u);
  EXPECT_FLOAT_EQ(inc.density_at(Voxel{0, 0, 0}), 0.0f);
}

TEST(Incremental, AccessorsExposeConfiguration) {
  const auto t = make_tiny(1, 2, 1);
  IncrementalEstimator inc(t.domain, t.params);
  EXPECT_EQ(inc.domain(), t.domain);
  EXPECT_DOUBLE_EQ(inc.params().hs, t.params.hs);
}

TEST(Incremental, RejectsBadParams) {
  const auto t = make_tiny(1, 2, 1);
  Params bad = t.params;
  bad.hs = 0.0;
  EXPECT_THROW(IncrementalEstimator(t.domain, bad), std::invalid_argument);
}

}  // namespace
}  // namespace stkde::core
