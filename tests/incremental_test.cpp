#include "core/incremental.hpp"

#include <gtest/gtest.h>

#include "core/estimator.hpp"
#include "helpers.hpp"

namespace stkde::core {
namespace {

using stkde::testing::grid_tolerance;
using stkde::testing::make_tiny;

TEST(Incremental, SingleBatchMatchesBatchEstimate) {
  const auto t = make_tiny(150, 3, 2);
  IncrementalEstimator inc(t.domain, t.params);
  inc.add(t.points);
  const DensityGrid snap = inc.snapshot();
  const Result batch = estimate(t.points, t.domain, t.params, Algorithm::kPBSym);
  EXPECT_LE(snap.max_abs_diff(batch.grid), grid_tolerance(batch.grid));
  EXPECT_EQ(inc.live_count(), t.points.size());
}

TEST(Incremental, MultipleBatchesMatchCombinedBatch) {
  const auto t = make_tiny(200, 3, 2);
  IncrementalEstimator inc(t.domain, t.params);
  const std::size_t half = t.points.size() / 2;
  inc.add(PointSet(t.points.begin(), t.points.begin() + half));
  inc.add(PointSet(t.points.begin() + half, t.points.end()));
  const Result batch = estimate(t.points, t.domain, t.params, Algorithm::kPBSym);
  EXPECT_LE(inc.snapshot().max_abs_diff(batch.grid),
            grid_tolerance(batch.grid));
}

TEST(Incremental, RemoveUndoesAdd) {
  const auto t = make_tiny(100, 3, 2);
  IncrementalEstimator inc(t.domain, t.params);
  inc.add(t.points);
  inc.remove(t.points);
  EXPECT_EQ(inc.live_count(), 0u);
  // Raw sums cancel to float roundoff around zero.
  float max_abs = 0.0f;
  for (std::int64_t i = 0; i < inc.raw().size(); ++i)
    max_abs = std::max(max_abs, std::abs(inc.raw().data()[i]));
  EXPECT_LE(max_abs, 1e-5f);
  // Snapshot of an empty stream is exactly zero (n = 0 short-circuits).
  EXPECT_DOUBLE_EQ(inc.snapshot().sum(), 0.0);
}

TEST(Incremental, RemovalOfSubsetMatchesBatchOfRemainder) {
  const auto t = make_tiny(120, 3, 2);
  IncrementalEstimator inc(t.domain, t.params);
  inc.add(t.points);
  const PointSet gone(t.points.begin(), t.points.begin() + 40);
  inc.remove(gone);
  const PointSet kept(t.points.begin() + 40, t.points.end());
  const Result batch = estimate(kept, t.domain, t.params, Algorithm::kPBSym);
  EXPECT_EQ(inc.live_count(), kept.size());
  // Cancellation noise is bounded by the *full* set's peak, not the
  // remainder's, so scale tolerance accordingly.
  const Result full = estimate(t.points, t.domain, t.params, Algorithm::kPBSym);
  EXPECT_LE(inc.snapshot().max_abs_diff(batch.grid),
            3.0 * grid_tolerance(full.grid));
}

TEST(Incremental, SlidingWindowMatchesWindowBatch) {
  const auto t = make_tiny(1, 3, 2);
  // A stream ordered by time: event i at t = i * 0.1.
  PointSet stream;
  for (int i = 0; i < 160; ++i)
    stream.push_back(Point{2.0 + (i * 7) % 20, 2.0 + (i * 3) % 16,
                           i * 0.1});
  IncrementalEstimator inc(t.domain, t.params);
  const double window = 8.0;
  std::size_t fed = 0;
  const std::size_t chunk = 40;
  while (fed < stream.size()) {
    const std::size_t hi = std::min(stream.size(), fed + chunk);
    const PointSet batch(stream.begin() + fed, stream.begin() + hi);
    const double now = batch.back().t;
    inc.advance_window(batch, now - window);
    fed = hi;
  }
  // Reference: batch estimate over exactly the live window.
  PointSet live;
  const double cutoff = stream.back().t - window;
  for (const auto& p : stream)
    if (p.t >= cutoff) live.push_back(p);
  ASSERT_EQ(inc.live_count(), live.size());
  const Result batch = estimate(live, t.domain, t.params, Algorithm::kPBSym);
  const Result full = estimate(stream, t.domain, t.params, Algorithm::kPBSym);
  EXPECT_LE(inc.snapshot().max_abs_diff(batch.grid),
            5.0 * grid_tolerance(full.grid));
}

TEST(Incremental, DensityAtMatchesSnapshot) {
  const auto t = make_tiny(60, 3, 2);
  IncrementalEstimator inc(t.domain, t.params);
  inc.add(t.points);
  const DensityGrid snap = inc.snapshot();
  const VoxelMapper map(t.domain);
  const Voxel v = map.voxel_of(t.points.front());
  EXPECT_FLOAT_EQ(inc.density_at(v), snap.at(v.x, v.y, v.t));
}

TEST(Incremental, EmptyStreamProbes) {
  const auto t = make_tiny(1, 2, 1);
  IncrementalEstimator inc(t.domain, t.params);
  EXPECT_EQ(inc.live_count(), 0u);
  EXPECT_FLOAT_EQ(inc.density_at(Voxel{0, 0, 0}), 0.0f);
}

TEST(Incremental, AccessorsExposeConfiguration) {
  const auto t = make_tiny(1, 2, 1);
  IncrementalEstimator inc(t.domain, t.params);
  EXPECT_EQ(inc.domain(), t.domain);
  EXPECT_DOUBLE_EQ(inc.params().hs, t.params.hs);
}

TEST(Incremental, RejectsBadParams) {
  const auto t = make_tiny(1, 2, 1);
  Params bad = t.params;
  bad.hs = 0.0;
  EXPECT_THROW(IncrementalEstimator(t.domain, bad), std::invalid_argument);
}

}  // namespace
}  // namespace stkde::core
