#include "grid/reduction.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace stkde {
namespace {

DenseGrid3<float> random_grid(const Extent3& e, std::uint64_t seed) {
  DenseGrid3<float> g(e);
  util::Xoshiro256 rng(seed);
  for (std::int64_t i = 0; i < g.size(); ++i)
    g.data()[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  return g;
}

TEST(ReduceReplicas, SumsAllReplicas) {
  const Extent3 e{0, 4, 0, 5, 0, 6};
  DenseGrid3<float> dst(e);
  dst.fill(0.0f);
  std::vector<DenseGrid3<float>> reps;
  reps.push_back(random_grid(e, 1));
  reps.push_back(random_grid(e, 2));
  reps.push_back(random_grid(e, 3));
  reduce_replicas(dst, reps, 2);
  for (std::int64_t i = 0; i < dst.size(); ++i) {
    const float expect =
        reps[0].data()[i] + reps[1].data()[i] + reps[2].data()[i];
    ASSERT_FLOAT_EQ(dst.data()[i], expect);
  }
}

TEST(ReduceReplicas, AddsOntoExistingContent) {
  const Extent3 e{0, 2, 0, 2, 0, 2};
  DenseGrid3<float> dst(e);
  dst.fill(10.0f);
  std::vector<DenseGrid3<float>> reps;
  reps.emplace_back(e);
  reps.back().fill(1.0f);
  reduce_replicas(dst, reps, 1);
  EXPECT_FLOAT_EQ(dst.at(1, 1, 1), 11.0f);
}

TEST(ReduceReplicas, EmptyReplicaListIsNoop) {
  const Extent3 e{0, 2, 0, 2, 0, 2};
  DenseGrid3<float> dst(e);
  dst.fill(5.0f);
  reduce_replicas(dst, {}, 3);
  EXPECT_FLOAT_EQ(dst.at(0, 0, 0), 5.0f);
}

TEST(ReduceReplicas, ThreadCountDoesNotChangeResult) {
  const Extent3 e{0, 7, 0, 5, 0, 9};
  std::vector<DenseGrid3<float>> reps;
  reps.push_back(random_grid(e, 4));
  reps.push_back(random_grid(e, 5));
  DenseGrid3<float> d1(e), d4(e);
  d1.fill(0.0f);
  d4.fill(0.0f);
  reduce_replicas(d1, reps, 1);
  reduce_replicas(d4, reps, 4);
  EXPECT_DOUBLE_EQ(d1.max_abs_diff(d4), 0.0);
}

TEST(ReduceReplicas, PaddedGridsUseTheRowAwarePath) {
  DenseGrid3<float> dst;
  dst.allocate(GridDims{3, 3, 5}, RowPad::kCacheLine);
  ASSERT_TRUE(dst.padded());
  dst.fill(0.0f);
  std::vector<DenseGrid3<float>> reps;
  for (int i = 0; i < 2; ++i) {
    DenseGrid3<float>& r = reps.emplace_back();
    if (i == 0)
      r.allocate(GridDims{3, 3, 5}, RowPad::kCacheLine);
    else
      r.allocate(GridDims{3, 3, 5});
    r.fill(static_cast<float>(i + 1));
  }
  reduce_replicas(dst, reps, 2);
  EXPECT_DOUBLE_EQ(dst.sum(), 3.0 * 3 * 3 * 5);
  EXPECT_FLOAT_EQ(dst.at(2, 2, 4), 3.0f);
}

TEST(ReduceReplicas, RejectsMismatchedExtent) {
  DenseGrid3<float> dst(Extent3{0, 2, 0, 2, 0, 2});
  std::vector<DenseGrid3<float>> reps;
  reps.emplace_back(Extent3{0, 3, 0, 2, 0, 2});
  EXPECT_THROW(reduce_replicas(dst, reps, 1), std::invalid_argument);
}

TEST(AccumulateBuffer, AddsOverlapRegionOnly) {
  DenseGrid3<float> dst(Extent3{0, 10, 0, 10, 0, 10});
  dst.fill(0.0f);
  DenseGrid3<float> buf(Extent3{8, 12, 8, 12, 8, 12});  // partially outside
  buf.fill(1.0f);
  accumulate_buffer(dst, buf);
  // Inside the overlap [8,10)^3 every cell gained 1.
  EXPECT_FLOAT_EQ(dst.at(9, 9, 9), 1.0f);
  EXPECT_FLOAT_EQ(dst.at(8, 8, 8), 1.0f);
  // Outside stays 0.
  EXPECT_FLOAT_EQ(dst.at(7, 9, 9), 0.0f);
  EXPECT_FLOAT_EQ(dst.at(9, 7, 9), 0.0f);
  EXPECT_FLOAT_EQ(dst.at(9, 9, 7), 0.0f);
  EXPECT_DOUBLE_EQ(dst.sum(), 8.0);  // 2*2*2 overlap
}

TEST(AccumulateBuffer, RespectsBufferValues) {
  DenseGrid3<float> dst(Extent3{0, 4, 0, 4, 0, 4});
  dst.fill(0.5f);
  DenseGrid3<float> buf(Extent3{1, 3, 1, 3, 1, 3});
  buf.fill(0.0f);
  buf.at(2, 2, 2) = 7.0f;
  accumulate_buffer(dst, buf);
  EXPECT_FLOAT_EQ(dst.at(2, 2, 2), 7.5f);
  EXPECT_FLOAT_EQ(dst.at(1, 1, 1), 0.5f);
}

TEST(AccumulateBuffer, DisjointBufferIsNoop) {
  DenseGrid3<float> dst(Extent3{0, 4, 0, 4, 0, 4});
  dst.fill(1.0f);
  DenseGrid3<float> buf(Extent3{10, 12, 10, 12, 10, 12});
  buf.fill(100.0f);
  accumulate_buffer(dst, buf);
  EXPECT_DOUBLE_EQ(dst.sum(), 64.0);
}

TEST(AccumulateBuffer, DoubleSpecializationWorks) {
  DenseGrid3<double> dst(Extent3{0, 2, 0, 2, 0, 2});
  dst.fill(0.0);
  DenseGrid3<double> buf(Extent3{0, 2, 0, 2, 0, 2});
  buf.fill(0.25);
  accumulate_buffer(dst, buf);
  EXPECT_DOUBLE_EQ(dst.sum(), 2.0);
}

}  // namespace
}  // namespace stkde
