// Thread-safety-annotation battery (docs/ANALYSIS.md).
//
// Two proofs, one per layer:
//  1. Compile-time: the annotated wrappers in util/mutex.hpp are zero-cost
//     — layout-identical to the std types they forward to, with no vtable,
//     no extra state, and the same (non)triviality. static_asserts, so a
//     regression fails the *build* of this test on every compiler.
//  2. Runtime: the wrappers forward faithfully — mutual exclusion,
//     try_lock semantics, condition-variable wakeup and deadline paths —
//     on the explicit-while-loop wait idiom the analysis mandates.
//
// The complementary negative proof (the analysis actually *fires* on a
// seeded violation under -DSTKDE_THREAD_SAFETY=ON) is
// annotations_negative.cpp, driven by the annotations_negative_compile
// ctest entry.

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace stkde {
namespace {

using util::CondVar;
using util::LockGuard;
using util::Mutex;
using util::UniqueLock;

// --- 1. Zero-cost: layout and triviality match the wrapped std types. ---

static_assert(sizeof(Mutex) == sizeof(std::mutex),
              "Mutex must add no state to std::mutex");
static_assert(alignof(Mutex) == alignof(std::mutex),
              "Mutex must not change alignment");
static_assert(sizeof(LockGuard) == sizeof(std::lock_guard<std::mutex>),
              "LockGuard must add no state to std::lock_guard");
static_assert(sizeof(UniqueLock) == sizeof(std::unique_lock<std::mutex>),
              "UniqueLock must add no state to std::unique_lock");
static_assert(sizeof(CondVar) == sizeof(std::condition_variable),
              "CondVar must add no state to std::condition_variable");

// No accidental virtuals — the annotations are attributes, not interfaces.
static_assert(!std::is_polymorphic_v<Mutex>);
static_assert(!std::is_polymorphic_v<LockGuard>);
static_assert(!std::is_polymorphic_v<UniqueLock>);
static_assert(!std::is_polymorphic_v<CondVar>);

// Same (non)triviality of destruction as the std types: LockGuard and
// UniqueLock must release in their destructors exactly as the std guards
// do, and Mutex/CondVar destruction forwards to the std members.
static_assert(std::is_trivially_destructible_v<Mutex> ==
              std::is_trivially_destructible_v<std::mutex>);
static_assert(std::is_trivially_destructible_v<CondVar> ==
              std::is_trivially_destructible_v<std::condition_variable>);

// Non-copyable, non-movable, like the std types.
static_assert(!std::is_copy_constructible_v<Mutex>);
static_assert(!std::is_move_constructible_v<Mutex>);
static_assert(!std::is_copy_constructible_v<LockGuard>);
static_assert(!std::is_copy_constructible_v<UniqueLock>);
static_assert(!std::is_copy_constructible_v<CondVar>);

// The annotation macros themselves must vanish on non-Clang compilers and
// never change a declaration's meaning: a function declared with them is
// still an ordinary function. (Spelled as a real declaration so the macro
// expansion is exercised in every build, Clang or not.)
class AnnotatedProbe {
 public:
  void touch() STKDE_EXCLUDES(mu_) {
    LockGuard lk(mu_);
    ++value_;
  }
  [[nodiscard]] int value() const STKDE_EXCLUDES(mu_) {
    LockGuard lk(mu_);
    return value_;
  }

 private:
  mutable Mutex mu_;
  int value_ STKDE_GUARDED_BY(mu_) = 0;
};

// --- 2. Runtime: the wrappers forward faithfully. ---

TEST(Annotations, LockGuardMutualExclusion) {
  Mutex mu;
  int counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::vector<std::thread> ts;
  ts.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        LockGuard lk(mu);
        ++counter;
      }
    });
  for (auto& t : ts) t.join();
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(Annotations, TryLockReportsContention) {
  Mutex mu;
  ASSERT_TRUE(mu.try_lock());
  // Same-thread relock is UB on std::mutex; probe from another thread.
  bool second = true;
  std::thread probe([&] { second = mu.try_lock(); });
  probe.join();
  EXPECT_FALSE(second);
  mu.unlock();
  ASSERT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(Annotations, CondVarExplicitLoopWakeup) {
  Mutex mu;
  CondVar cv;
  bool ready = false;  // guarded by mu (local scope: annotation not needed)
  int observed = -1;

  std::thread waiter([&] {
    UniqueLock lk(mu);
    while (!ready) cv.wait(lk);  // the idiom the analysis mandates
    observed = 42;
  });
  {
    LockGuard lk(mu);
    ready = true;
  }
  cv.notify_one();
  waiter.join();
  EXPECT_EQ(observed, 42);
}

TEST(Annotations, CondVarDeadlineTimesOut) {
  Mutex mu;
  CondVar cv;
  UniqueLock lk(mu);
  const auto status = cv.wait_for(lk, std::chrono::milliseconds{5});
  EXPECT_EQ(status, std::cv_status::timeout);
}

TEST(Annotations, AnnotatedProbeBehavesLikePlainClass) {
  AnnotatedProbe p;
  std::vector<std::thread> ts;
  ts.reserve(3);
  for (int t = 0; t < 3; ++t)
    ts.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) p.touch();
    });
  for (auto& t : ts) t.join();
  EXPECT_EQ(p.value(), 3000);
}

}  // namespace
}  // namespace stkde
