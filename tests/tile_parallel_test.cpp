// Parallel PB-TILE: the parity-wave and halo-buffer tile schedules
// (core/detail/tile_scatter.hpp) against the serial engine.
//
// The keystone assertions are equivalences — the parallel walk is a
// reordering of the same per-point arithmetic, so serial and parallel grids
// agree at the float-reorder tolerance for every kernel and thread count —
// plus bitwise determinism: wave order is fixed, writers inside a wave
// touch disjoint voxels, and the exact (quant == 0) cache makes a hit
// indistinguishable from a fill, so repeated runs of one wave schedule
// agree bit for bit. This suite also runs under the STKDE_TSAN CI job:
// the parallel engine executes on sched::ThreadPool, so the sanitizer
// validates the wave barriers and the table-cache pool end to end.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/detail/common.hpp"
#include "core/detail/tile_scatter.hpp"
#include "core/incremental.hpp"
#include "helpers.hpp"
#include "partition/tile_order.hpp"

namespace stkde {
namespace {

using testing::TinyInstance;
using testing::make_tiny;

double rel_tolerance(const DensityGrid& ref, double rel) {
  return rel * static_cast<double>(std::max(ref.max_value(), 0.0f)) + 1e-12;
}

// Hs=3 on the 24x20x16 tiny grid: 4 KiB tiles give a 3x3 spatial tiling
// whose min widths (8, 6) satisfy the 2Hs parity rule directly.
TinyInstance parity_instance(std::size_t n, std::uint64_t seed = 1) {
  TinyInstance t = make_tiny(n, 3, 2, seed);
  t.params.tile.tile_bytes = 4096;
  return t;
}

// --- Schedule planning ------------------------------------------------------

TEST(TilePlan, PicksSerialParityAndHalo) {
  const GridDims dims{24, 20, 16};
  TileParams cfg;
  cfg.tile_bytes = 4096;
  // threads <= 1 is always the serial engine.
  const auto serial =
      core::detail::plan_tile_schedule(dims, 0, sizeof(float), cfg, 1, 3, 2);
  EXPECT_EQ(serial.schedule, core::detail::TileSchedule::kSerial);
  EXPECT_EQ(serial.bin_rule(), TileBinRule::kIntersection);
  // Wide-enough tiles: parity waves on the byte-budget tiling itself.
  const auto parity =
      core::detail::plan_tile_schedule(dims, 0, sizeof(float), cfg, 4, 3, 2);
  EXPECT_EQ(parity.schedule, core::detail::TileSchedule::kParityWave);
  EXPECT_EQ(parity.bin_rule(), TileBinRule::kOwner);
  EXPECT_GE(parity.tiles.min_width_x(), 6);
  EXPECT_GE(parity.tiles.min_width_y(), 6);
  // One-column tiles violate the 2Hs rule; kAuto re-clamps while the
  // smallest parity wave still feeds every worker (P=2: clamped 4x3x1 has
  // floor(4/2)*floor(3/2) = 2 tiles in its smallest wave)...
  cfg.tile_bytes = 1;
  const auto reclamped =
      core::detail::plan_tile_schedule(dims, 0, sizeof(float), cfg, 2, 3, 2);
  EXPECT_EQ(reclamped.schedule, core::detail::TileSchedule::kParityWave);
  EXPECT_GE(reclamped.tiles.min_width_x(), 6);
  EXPECT_GE(reclamped.tiles.min_width_y(), 6);
  // ...and falls back to halo buffers when it would not (P=4: 2 < 4).
  const auto halo =
      core::detail::plan_tile_schedule(dims, 0, sizeof(float), cfg, 4, 3, 2);
  EXPECT_EQ(halo.schedule, core::detail::TileSchedule::kHaloBuffer);
  EXPECT_EQ(halo.tiles.a(), dims.gx);  // the byte-budget tiling is kept
  // Forced modes override the heuristic.
  cfg.waves = TileWaveMode::kParity;
  EXPECT_EQ(core::detail::plan_tile_schedule(dims, 0, sizeof(float), cfg, 4, 3, 2)
                .schedule,
            core::detail::TileSchedule::kParityWave);
  cfg.waves = TileWaveMode::kHalo;
  EXPECT_EQ(core::detail::plan_tile_schedule(dims, 0, sizeof(float), cfg, 4, 3, 2)
                .schedule,
            core::detail::TileSchedule::kHaloBuffer);
}

// --- Parallel-vs-serial equivalence, all kernels ----------------------------

class TileParallelKernelTest : public ::testing::TestWithParam<std::string> {};

TEST_P(TileParallelKernelTest, ParallelMatchesSerialAcrossThreadCounts) {
  TinyInstance t = parity_instance(220);
  t.params.kernel = kernels::kernel_by_name(GetParam());
  const Result serial =
      estimate(t.points, t.domain, t.params, Algorithm::kPBTile);
  EXPECT_EQ(serial.diag.tile_schedule, "serial");
  const double tol = rel_tolerance(serial.grid, 1e-5);
  for (const int P : {1, 2, 4}) {
    t.params.tile.threads = P;
    t.params.tile.waves = TileWaveMode::kAuto;
    const Result r = estimate(t.points, t.domain, t.params, Algorithm::kPBTile);
    EXPECT_LE(r.grid.max_abs_diff(serial.grid), tol) << "P=" << P;
    EXPECT_EQ(r.diag.tile_schedule, P == 1 ? "serial" : "parity-wave");
    EXPECT_EQ(r.diag.tile_threads, P);
    EXPECT_GT(r.diag.table_lookups, 0);
  }
  // Forced narrow tiles (one grid column each, far below 2Hs): the
  // owner-computes halo-buffer fallback, still at 1e-5.
  t.params.tile.threads = 4;
  t.params.tile.tile_bytes = 1;
  t.params.tile.waves = TileWaveMode::kHalo;
  const Result halo = estimate(t.points, t.domain, t.params, Algorithm::kPBTile);
  EXPECT_EQ(halo.diag.tile_schedule, "halo-buffer");
  EXPECT_LE(halo.grid.max_abs_diff(serial.grid), tol);
  EXPECT_GT(halo.diag.extra_bytes, 0u);  // halo buffers were accounted
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, TileParallelKernelTest,
    ::testing::Values("epanechnikov", "as-printed", "uniform", "triangular",
                      "quartic", "gaussian-truncated"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string s = info.param;
      for (auto& c : s)
        if (c == '-') c = '_';
      return s;
    });

// --- Determinism ------------------------------------------------------------

TEST(TileParallel, WaveSchedulesAreBitwiseDeterministic) {
  // With the exact cache, a hit reuses a bitwise-identical table, so the
  // dynamic tile-to-worker assignment cannot leak into the result: repeated
  // P=4 runs of one wave schedule agree bit for bit.
  TinyInstance t = parity_instance(300);
  t.params.tile.threads = 4;
  const Result a = estimate(t.points, t.domain, t.params, Algorithm::kPBTile);
  const Result b = estimate(t.points, t.domain, t.params, Algorithm::kPBTile);
  ASSERT_EQ(a.diag.tile_schedule, "parity-wave");
  EXPECT_EQ(a.grid.max_abs_diff(b.grid), 0.0);

  t.params.tile.tile_bytes = 1;
  t.params.tile.waves = TileWaveMode::kHalo;
  const Result c = estimate(t.points, t.domain, t.params, Algorithm::kPBTile);
  const Result d = estimate(t.points, t.domain, t.params, Algorithm::kPBTile);
  ASSERT_EQ(c.diag.tile_schedule, "halo-buffer");
  EXPECT_EQ(c.grid.max_abs_diff(d.grid), 0.0);
}

// --- Quantized cache under the parallel walk --------------------------------

TEST(TileParallel, QuantizedCacheStaysWithinBoundInParallel) {
  // Per-worker caches pick their own first-arrival representatives, so the
  // quantized parallel run is not bitwise stable — but it must stay inside
  // the same documented 1/Q offset bound as the serial quantized engine.
  TinyInstance t = parity_instance(250);
  const Result exact = estimate(t.points, t.domain, t.params, Algorithm::kPBTile);
  t.params.tile.table_quant = 8;
  t.params.tile.threads = 4;
  const Result cached = estimate(t.points, t.domain, t.params, Algorithm::kPBTile);
  EXPECT_LE(cached.grid.max_abs_diff(exact.grid),
            rel_tolerance(exact.grid, 0.05));
  // Owner bins probe once per point and the lookups are split over four
  // private caches, so the aggregate hit rate is well below the serial
  // engine's — it just must not collapse to zero.
  EXPECT_GT(cached.diag.table_cache_hit_rate(), 0.1);
}

// --- Streaming reuse --------------------------------------------------------

TEST(TileParallel, ShardedStreamingIngestServesTablesFromTheCachePool) {
  // The sharded streaming scatter now leases per-worker caches from the
  // same pool facility; the stats must see the probes, and the P=4 stream
  // must still match a serial one.
  TinyInstance t = make_tiny(160, 3, 2);
  core::StreamConfig serial_cfg;  // threads = 1
  core::StreamConfig sharded_cfg;
  sharded_cfg.threads = 4;
  sharded_cfg.tiles = DecompRequest{4, 4, 1};
  core::IncrementalEstimator serial(t.domain, t.params, serial_cfg);
  core::IncrementalEstimator sharded(t.domain, t.params, sharded_cfg);
  serial.add(t.points);
  sharded.add(t.points);
  EXPECT_GT(sharded.stats().table_lookups, 0u);
  EXPECT_GE(sharded.stats().table_lookups, sharded.stats().table_fills);
  const DensityGrid a = serial.snapshot();
  const DensityGrid b = sharded.snapshot();
  EXPECT_LE(a.max_abs_diff(b), rel_tolerance(a, 1e-5));
}

}  // namespace
}  // namespace stkde
