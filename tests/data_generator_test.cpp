#include "data/generator.hpp"

#include <gtest/gtest.h>

#include "data/datasets.hpp"
#include "geom/voxel_mapper.hpp"
#include "partition/binning.hpp"
#include "partition/load.hpp"

namespace stkde::data {
namespace {

DomainSpec dom100() { return DomainSpec{0, 0, 0, 100, 100, 100, 1.0, 1.0}; }

TEST(Generator, ProducesRequestedCount) {
  ClusterConfig cfg;
  cfg.n_points = 1234;
  const PointSet pts = generate_clustered(dom100(), cfg);
  EXPECT_EQ(pts.size(), 1234u);
}

TEST(Generator, DeterministicForSameSeed) {
  ClusterConfig cfg;
  cfg.n_points = 100;
  cfg.seed = 7;
  const PointSet a = generate_clustered(dom100(), cfg);
  const PointSet b = generate_clustered(dom100(), cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(Generator, DifferentSeedsDiffer) {
  ClusterConfig cfg;
  cfg.n_points = 100;
  cfg.seed = 1;
  const PointSet a = generate_clustered(dom100(), cfg);
  cfg.seed = 2;
  const PointSet b = generate_clustered(dom100(), cfg);
  int same = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i] == b[i]) ++same;
  EXPECT_LT(same, 5);
}

TEST(Generator, AllPointsInsideDomain) {
  ClusterConfig cfg;
  cfg.n_points = 5000;
  const DomainSpec d = dom100();
  const VoxelMapper m(d);
  for (const auto& p : generate_clustered(d, cfg))
    EXPECT_TRUE(m.in_domain(p));
}

TEST(Generator, ClusteredIsMoreImbalancedThanUniform) {
  const DomainSpec d = dom100();
  const VoxelMapper m(d);
  const Decomposition dec = Decomposition::uniform(d.dims(), {4, 4, 4});
  ClusterConfig cfg;
  cfg.n_points = 5000;
  cfg.n_clusters = 3;
  cfg.cluster_sigma_frac = 0.02;
  cfg.background_frac = 0.0;
  const auto clustered_loads =
      point_count_loads(bin_by_owner(generate_clustered(d, cfg), m, dec));
  const auto uniform_loads = point_count_loads(
      bin_by_owner(generate_uniform(d, 5000, 9), m, dec));
  EXPECT_GT(imbalance(clustered_loads).imbalance,
            2.0 * imbalance(uniform_loads).imbalance);
}

TEST(Generator, BackgroundFractionOneIsUniformish) {
  ClusterConfig cfg;
  cfg.n_points = 2000;
  cfg.background_frac = 1.0;
  cfg.n_clusters = 0;
  const PointSet pts = generate_clustered(dom100(), cfg);
  EXPECT_EQ(pts.size(), 2000u);
}

TEST(Generator, NoClustersWithoutFullBackgroundThrows) {
  ClusterConfig cfg;
  cfg.n_clusters = 0;
  cfg.background_frac = 0.5;
  EXPECT_THROW(generate_clustered(dom100(), cfg), std::invalid_argument);
}

TEST(Generator, UniformCoversTheDomain) {
  const DomainSpec d = dom100();
  const PointSet pts = generate_uniform(d, 8000, 3);
  // Every octant should get a decent share.
  int octants[8] = {0};
  for (const auto& p : pts) {
    const int idx = (p.x > 50) * 4 + (p.y > 50) * 2 + (p.t > 50);
    ++octants[idx];
  }
  for (const int c : octants) EXPECT_GT(c, 500);
}

TEST(Generator, DegenerateStacksAllPointsAtCenter) {
  const PointSet pts = generate_degenerate(dom100(), 42);
  ASSERT_EQ(pts.size(), 42u);
  for (const auto& p : pts) EXPECT_EQ(p, pts.front());
  EXPECT_DOUBLE_EQ(pts[0].x, 50.0);
}

TEST(Generator, TemporalPatternsProduceDifferentProfiles) {
  ClusterConfig burst;
  burst.n_points = 4000;
  burst.pattern = TemporalPattern::kBurst;
  burst.temporal_sigma_frac = 0.02;
  burst.background_frac = 0.0;
  burst.n_clusters = 2;
  ClusterConfig uniform = burst;
  uniform.pattern = TemporalPattern::kUniform;
  const DomainSpec d = dom100();
  auto temporal_spread = [&](const PointSet& pts) {
    double mean = 0.0;
    for (const auto& p : pts) mean += p.t;
    mean /= static_cast<double>(pts.size());
    double var = 0.0;
    for (const auto& p : pts) var += (p.t - mean) * (p.t - mean);
    return var / static_cast<double>(pts.size());
  };
  const double sburst = temporal_spread(generate_clustered(d, burst));
  const double suni = temporal_spread(generate_clustered(d, uniform));
  EXPECT_LT(sburst, suni);  // bursts concentrate time
}

TEST(Datasets, ProfilesAreDistinct) {
  const auto dengue = dataset_profile(Dataset::kDengue, 100, 1);
  const auto flu = dataset_profile(Dataset::kFlu, 100, 1);
  EXPECT_NE(dengue.n_clusters, flu.n_clusters);
  EXPECT_EQ(dengue.n_points, 100u);
}

TEST(Datasets, NamesRoundTrip) {
  EXPECT_EQ(to_string(Dataset::kDengue), "Dengue");
  EXPECT_EQ(to_string(Dataset::kPollenUS), "PollenUS");
  EXPECT_EQ(to_string(Dataset::kFlu), "Flu");
  EXPECT_EQ(to_string(Dataset::kEBird), "eBird");
}

TEST(Datasets, GenerateDatasetRespectsDomain) {
  const DomainSpec d = dom100();
  const VoxelMapper m(d);
  for (const Dataset ds : {Dataset::kDengue, Dataset::kPollenUS, Dataset::kFlu,
                           Dataset::kEBird}) {
    const PointSet pts = generate_dataset(ds, d, 500, 3);
    EXPECT_EQ(pts.size(), 500u);
    for (const auto& p : pts) EXPECT_TRUE(m.in_domain(p));
  }
}

}  // namespace
}  // namespace stkde::data
